//! Warn-once parsing of the harness's environment knobs.
//!
//! `SWARM_BENCH_OPS_SCALE`, `SWARM_BENCH_THREADS`, and `SWARM_CHAOS_SEEDS`
//! all follow one convention: unset means "use the default", a valid value
//! applies, and garbage is *ignored with a one-time warning on stderr* —
//! never a panic (a bench must not die over a typo) and never silence (a
//! silently shrunken chaos sweep would report clean runs that never
//! executed). This module is the single implementation of that convention;
//! each knob's call site supplies only its name, validity predicate, and an
//! example of a well-formed value.
//!
//! The helper lives in `swarm-kv` because the runner's `ops_scale` sits
//! below `swarm-bench` in the dependency chain; `swarm-bench` re-exports it
//! for the sweep driver and the chaos suite.

use std::collections::BTreeSet;
use std::str::FromStr;
use std::sync::Mutex;

/// Env-var names already warned about (one warning per knob per process).
static WARNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Reads and parses the environment knob `name`. Returns `None` when the
/// variable is unset *or* unparsable/invalid; the latter also prints a
/// one-time warning naming the knob, the rejected value, and `expected`
/// (e.g. `"a positive float like 0.01"`).
pub fn env_knob<T, F>(name: &'static str, expected: &str, valid: F) -> Option<T>
where
    T: FromStr,
    F: Fn(&T) -> bool,
{
    parse_knob(name, std::env::var(name).ok().as_deref(), expected, valid)
}

/// [`env_knob`] with the raw value passed explicitly (unit-testable without
/// touching the process environment).
pub fn parse_knob<T, F>(
    name: &'static str,
    raw: Option<&str>,
    expected: &str,
    valid: F,
) -> Option<T>
where
    T: FromStr,
    F: Fn(&T) -> bool,
{
    let raw = raw?;
    match raw.parse::<T>() {
        Ok(v) if valid(&v) => Some(v),
        _ => {
            if WARNED.lock().expect("warn set poisoned").insert(name) {
                eprintln!("warn: ignoring {name}={raw:?}: expected {expected}");
            }
            None
        }
    }
}

/// Default pacing of a migration copy stream when `SWARM_RESHARD_RATE` is
/// unset: one key every 2 µs (500 K keys/s) — fast enough to finish a quick
/// split inside a bench run, slow enough that foreground traffic keeps the
/// upper hand on the shared fabric.
pub(crate) const DEFAULT_RESHARD_PACE_NS: u64 = 2_000;

/// The elastic-resharding pacing knob: `SWARM_RESHARD_RATE` caps the
/// migration copy stream at this many keys per (virtual) second. Follows
/// the shared warn-once convention: unset means the default rate, garbage
/// is ignored with a one-time stderr warning.
pub fn reshard_rate() -> Option<f64> {
    parse_reshard_rate(std::env::var("SWARM_RESHARD_RATE").ok().as_deref())
}

fn parse_reshard_rate(raw: Option<&str>) -> Option<f64> {
    parse_knob(
        "SWARM_RESHARD_RATE",
        raw,
        "a positive keys-per-second rate like 250000",
        |v: &f64| v.is_finite() && *v > 0.0,
    )
}

/// Nanoseconds between migrated keys for a copy rate of `rate` keys/s
/// (`None` = the default pace; floor 1 ns so absurd rates stay causal).
pub(crate) fn pace_ns_for_rate(rate: Option<f64>) -> u64 {
    match rate {
        Some(r) => ((1e9 / r) as u64).max(1),
        None => DEFAULT_RESHARD_PACE_NS,
    }
}

/// The effective per-key migration pace from the environment.
pub(crate) fn reshard_pace_ns() -> u64 {
    pace_ns_for_rate(reshard_rate())
}

/// Default anti-entropy round period when `SWARM_REPAIR_PERIOD_US` is
/// unset: one reconciliation round every 50 µs of virtual time — frequent
/// enough to converge inside a bench window, rare enough that repair
/// traffic stays a background hum.
pub(crate) const DEFAULT_REPAIR_PERIOD_NS: u64 = 50_000;

/// Default digest bucket count when `SWARM_REPAIR_BUCKETS` is unset.
pub(crate) const DEFAULT_REPAIR_BUCKETS: u32 = 64;

/// The anti-entropy period knob: `SWARM_REPAIR_PERIOD_US` sets the virtual
/// microseconds between repair rounds. Warn-once convention: unset means
/// the default period, garbage is ignored with a one-time stderr warning.
pub fn repair_period_ns() -> u64 {
    parse_repair_period_us(std::env::var("SWARM_REPAIR_PERIOD_US").ok().as_deref())
        .map_or(DEFAULT_REPAIR_PERIOD_NS, |us| us.saturating_mul(1_000))
}

fn parse_repair_period_us(raw: Option<&str>) -> Option<u64> {
    parse_knob(
        "SWARM_REPAIR_PERIOD_US",
        raw,
        "a positive microsecond period like 50",
        |v: &u64| *v > 0,
    )
}

/// The anti-entropy digest granularity knob: `SWARM_REPAIR_BUCKETS` sets
/// how many hash buckets the `Buckets`/`BloomBuckets` strategies split the
/// keyspace into. Warn-once convention, same as its siblings.
pub fn repair_buckets() -> u32 {
    parse_repair_buckets(std::env::var("SWARM_REPAIR_BUCKETS").ok().as_deref())
        .unwrap_or(DEFAULT_REPAIR_BUCKETS)
}

fn parse_repair_buckets(raw: Option<&str>) -> Option<u32> {
    parse_knob(
        "SWARM_REPAIR_BUCKETS",
        raw,
        "a positive bucket count like 64",
        |v: &u32| *v >= 1,
    )
}

/// The hedge trigger knob: `SWARM_HEDGE_DELAY_PCT` sets which percentile of
/// the per-destination RTT window arms a hedge (default 99). Warn-once
/// convention, same as its siblings. Only consulted when a run opts into
/// hedging ([`hedge_config`]); it cannot switch hedging on by itself.
pub fn hedge_delay_pct() -> f64 {
    parse_hedge_delay_pct(std::env::var("SWARM_HEDGE_DELAY_PCT").ok().as_deref())
        .unwrap_or(swarm_core::HedgeConfig::on().delay_pct)
}

fn parse_hedge_delay_pct(raw: Option<&str>) -> Option<f64> {
    parse_knob(
        "SWARM_HEDGE_DELAY_PCT",
        raw,
        "a percentile in (0, 100] like 99",
        |v: &f64| v.is_finite() && *v > 0.0 && *v <= 100.0,
    )
}

/// The hedge budget knob: `SWARM_HEDGE_MAX_INFLIGHT` caps concurrent hedges
/// per client (default 4). Warn-once convention, same as its siblings.
pub fn hedge_max_inflight() -> usize {
    parse_hedge_max_inflight(std::env::var("SWARM_HEDGE_MAX_INFLIGHT").ok().as_deref())
        .unwrap_or(swarm_core::HedgeConfig::on().max_inflight)
}

fn parse_hedge_max_inflight(raw: Option<&str>) -> Option<usize> {
    parse_knob(
        "SWARM_HEDGE_MAX_INFLIGHT",
        raw,
        "a positive hedge budget like 4",
        |v: &usize| *v >= 1,
    )
}

/// [`swarm_core::HedgeConfig::on`] with the environment knobs applied — the
/// config benches and the chaos suite use when a run opts into hedging.
/// The knobs only tune an explicitly enabled config; they never enable
/// hedging on a run that didn't ask for it, so default executions stay
/// bit-identical regardless of the environment.
pub fn hedge_config() -> swarm_core::HedgeConfig {
    swarm_core::HedgeConfig {
        delay_pct: hedge_delay_pct(),
        max_inflight: hedge_max_inflight(),
        ..swarm_core::HedgeConfig::on()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_is_none_without_warning() {
        let v: Option<f64> = parse_knob("TEST_KNOB_UNSET", None, "a float", |_| true);
        assert_eq!(v, None);
        assert!(!WARNED.lock().unwrap().contains("TEST_KNOB_UNSET"));
    }

    #[test]
    fn valid_values_parse() {
        assert_eq!(
            parse_knob("TEST_KNOB_OK", Some("0.25"), "a float", |v: &f64| *v > 0.0),
            Some(0.25)
        );
        assert_eq!(
            parse_knob("TEST_KNOB_OK2", Some("8"), "an int", |v: &usize| *v >= 1),
            Some(8)
        );
    }

    #[test]
    fn garbage_is_rejected_with_one_warning() {
        let parse = || -> Option<u64> {
            parse_knob("TEST_KNOB_BAD", Some("banana"), "a positive integer", |v| {
                *v > 0
            })
        };
        assert_eq!(parse(), None);
        assert!(WARNED.lock().unwrap().contains("TEST_KNOB_BAD"));
        // A second rejection parses the same way; the warn set keeps the
        // name so stderr is not spammed per call.
        assert_eq!(parse(), None);
    }

    #[test]
    fn validity_predicate_rejects_out_of_domain_values() {
        // Parsable but invalid: negative, zero, and non-finite floats.
        for bad in ["-0.5", "0", "inf", "NaN"] {
            let v: Option<f64> =
                parse_knob("TEST_KNOB_DOMAIN", Some(bad), "positive", |v: &f64| {
                    v.is_finite() && *v > 0.0
                });
            assert_eq!(v, None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn reshard_rate_knob_parses_and_rejects_like_its_siblings() {
        // Unset: the default pace applies, no warning.
        assert_eq!(parse_reshard_rate(None), None);
        assert_eq!(pace_ns_for_rate(None), DEFAULT_RESHARD_PACE_NS);
        assert!(!WARNED.lock().unwrap().contains("SWARM_RESHARD_RATE"));
        // Valid rates translate to a per-key pace.
        assert_eq!(parse_reshard_rate(Some("250000")), Some(250_000.0));
        assert_eq!(pace_ns_for_rate(Some(250_000.0)), 4_000);
        assert_eq!(pace_ns_for_rate(Some(1e9)), 1);
        // Absurdly fast rates floor at 1 ns (stay causal, never 0).
        assert_eq!(pace_ns_for_rate(Some(1e18)), 1);
        // Garbage and out-of-domain rates are rejected, warn-once, no panic.
        for bad in ["banana", "", "0", "-5", "inf", "NaN"] {
            assert_eq!(parse_reshard_rate(Some(bad)), None, "{bad:?}");
        }
        assert!(WARNED.lock().unwrap().contains("SWARM_RESHARD_RATE"));
    }

    #[test]
    fn repair_knobs_parse_and_reject_like_their_siblings() {
        // Unset: defaults apply, no warning.
        assert_eq!(parse_repair_period_us(None), None);
        assert_eq!(parse_repair_buckets(None), None);
        assert!(!WARNED.lock().unwrap().contains("SWARM_REPAIR_PERIOD_US"));
        assert!(!WARNED.lock().unwrap().contains("SWARM_REPAIR_BUCKETS"));
        // Valid values parse (the period knob is in µs; callers scale to ns).
        assert_eq!(parse_repair_period_us(Some("50")), Some(50));
        assert_eq!(parse_repair_buckets(Some("128")), Some(128));
        // Garbage and out-of-domain values are rejected, warn-once.
        for bad in ["banana", "", "0", "-5", "1.5"] {
            assert_eq!(parse_repair_period_us(Some(bad)), None, "{bad:?}");
            assert_eq!(parse_repair_buckets(Some(bad)), None, "{bad:?}");
        }
        assert!(WARNED.lock().unwrap().contains("SWARM_REPAIR_PERIOD_US"));
        assert!(WARNED.lock().unwrap().contains("SWARM_REPAIR_BUCKETS"));
    }

    #[test]
    fn hedge_knobs_parse_and_reject_like_their_siblings() {
        // Unset: HedgeConfig::on()'s defaults apply, no warning.
        assert_eq!(parse_hedge_delay_pct(None), None);
        assert_eq!(parse_hedge_max_inflight(None), None);
        assert!(!WARNED.lock().unwrap().contains("SWARM_HEDGE_DELAY_PCT"));
        assert!(!WARNED.lock().unwrap().contains("SWARM_HEDGE_MAX_INFLIGHT"));
        // Valid values parse.
        assert_eq!(parse_hedge_delay_pct(Some("95")), Some(95.0));
        assert_eq!(parse_hedge_delay_pct(Some("99.9")), Some(99.9));
        assert_eq!(parse_hedge_max_inflight(Some("8")), Some(8));
        // Garbage and out-of-domain values are rejected, warn-once.
        for bad in ["banana", "", "0", "-5", "101", "inf", "NaN"] {
            assert_eq!(parse_hedge_delay_pct(Some(bad)), None, "{bad:?}");
        }
        for bad in ["banana", "", "0", "-5", "1.5"] {
            assert_eq!(parse_hedge_max_inflight(Some(bad)), None, "{bad:?}");
        }
        assert!(WARNED.lock().unwrap().contains("SWARM_HEDGE_DELAY_PCT"));
        assert!(WARNED.lock().unwrap().contains("SWARM_HEDGE_MAX_INFLIGHT"));
        // The assembled config is HedgeConfig::on() plus the knobs: enabled,
        // and never *dis*abled by the environment.
        let cfg = hedge_config();
        assert!(cfg.enabled);
        assert_eq!(cfg.window, swarm_core::HedgeConfig::on().window);
    }

    #[test]
    fn each_knob_warns_independently() {
        let a: Option<u64> = parse_knob("TEST_KNOB_A", Some("x"), "an int", |_| true);
        let b: Option<u64> = parse_knob("TEST_KNOB_B", Some("y"), "an int", |_| true);
        assert_eq!((a, b), (None, None));
        let warned = WARNED.lock().unwrap();
        assert!(warned.contains("TEST_KNOB_A") && warned.contains("TEST_KNOB_B"));
    }
}
