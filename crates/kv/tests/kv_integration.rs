//! End-to-end tests of the four key-value stores: protocol semantics
//! (§5.3), Table 2 roundtrip counts, and §7.1 latency calibration.

use std::rc::Rc;

use swarm_kv::{
    run_workload, Cluster, ClusterConfig, FuseeCluster, FuseeKv, KvClient, KvClientConfig, KvStore,
    Proto, RunConfig,
};
use swarm_sim::Sim;
use swarm_workload::{OpType, Workload, WorkloadSpec};

fn swarm_cluster(sim: &Sim, n_keys: u64) -> Cluster {
    let c = Cluster::new(sim, ClusterConfig::default());
    c.load_keys(n_keys, |k| vec![k as u8; 64]);
    c
}

fn abd_cluster(sim: &Sim, n_keys: u64) -> Cluster {
    let c = Cluster::new(
        sim,
        ClusterConfig {
            inplace: false,
            meta_bufs: 1,
            ..Default::default()
        },
    );
    c.load_keys(n_keys, |k| vec![k as u8; 64]);
    c
}

fn raw_cluster(sim: &Sim, n_keys: u64) -> Cluster {
    let c = Cluster::new(
        sim,
        ClusterConfig {
            replicas: 1,
            meta_bufs: 1,
            ..Default::default()
        },
    );
    c.load_keys(n_keys, |k| vec![k as u8; 64]);
    c
}

#[test]
fn swarm_kv_get_update_delete_reinsert() {
    let sim = Sim::new(1);
    let cluster = swarm_cluster(&sim, 8);
    let c = KvClient::new(&cluster, Proto::SafeGuess, 0, KvClientConfig::default());
    sim.block_on(async move {
        assert_eq!(*c.get(3).await.unwrap(), vec![3u8; 64]);
        assert!(c.update(3, vec![9u8; 64]).await);
        assert_eq!(*c.get(3).await.unwrap(), vec![9u8; 64]);
        assert!(c.delete(3).await);
        assert!(c.get(3).await.is_none());
        assert!(!c.update(3, vec![1u8; 64]).await, "update after delete");
        // Re-insert through fresh replicas (§5.3.1).
        assert!(c.insert(3, vec![5u8; 64]).await);
        assert_eq!(*c.get(3).await.unwrap(), vec![5u8; 64]);
    });
}

#[test]
fn swarm_kv_insert_fresh_key_is_visible_to_other_clients() {
    let sim = Sim::new(2);
    let cluster = swarm_cluster(&sim, 4);
    let a = KvClient::new(&cluster, Proto::SafeGuess, 0, KvClientConfig::default());
    let b = KvClient::new(&cluster, Proto::SafeGuess, 1, KvClientConfig::default());
    sim.block_on(async move {
        assert!(b.get(100).await.is_none(), "unindexed key must miss");
        assert!(a.insert(100, vec![0xAA; 64]).await);
        assert_eq!(*b.get(100).await.unwrap(), vec![0xAA; 64]);
    });
}

#[test]
fn updates_by_one_client_are_read_by_another() {
    let sim = Sim::new(3);
    let cluster = swarm_cluster(&sim, 4);
    let a = KvClient::new(&cluster, Proto::SafeGuess, 0, KvClientConfig::default());
    let b = KvClient::new(&cluster, Proto::SafeGuess, 1, KvClientConfig::default());
    sim.block_on(async move {
        for i in 1..20u8 {
            assert!(a.update(2, vec![i; 64]).await);
            assert_eq!(*b.get(2).await.unwrap(), vec![i; 64]);
        }
    });
}

#[test]
fn dm_abd_and_raw_basics() {
    let sim = Sim::new(4);
    let ac = abd_cluster(&sim, 4);
    let rc = raw_cluster(&sim, 4);
    let abd = KvClient::new(&ac, Proto::Abd, 0, KvClientConfig::default());
    let raw = KvClient::new(&rc, Proto::Raw, 0, KvClientConfig::default());
    sim.block_on(async move {
        assert_eq!(*abd.get(1).await.unwrap(), vec![1u8; 64]);
        assert!(abd.update(1, vec![7u8; 64]).await);
        assert_eq!(*abd.get(1).await.unwrap(), vec![7u8; 64]);
        assert_eq!(*raw.get(1).await.unwrap(), vec![1u8; 64]);
        assert!(raw.update(1, vec![8u8; 64]).await);
        assert_eq!(*raw.get(1).await.unwrap(), vec![8u8; 64]);
    });
}

/// Table 2: common-case roundtrip counts per system.
#[test]
fn table2_roundtrip_counts() {
    // (proto-ish, expected get rtts, expected update rtts, common fraction)
    let sim = Sim::new(5);
    let sw = swarm_cluster(&sim, 64);
    let swarm = KvClient::new(&sw, Proto::SafeGuess, 0, KvClientConfig::default());
    let stats = run_workload(
        &sim,
        &[swarm],
        &Workload::ycsb(WorkloadSpec::B, 64, 64),
        &RunConfig {
            warmup_ops: 2_000,
            measure_ops: 2_000,
            record_rtts: true,
            ..Default::default()
        },
    );
    assert!(
        stats.rtt_fraction(OpType::Get, 1) > 0.95,
        "SWARM gets in 1 RTT: {}",
        stats.rtt_fraction(OpType::Get, 1)
    );
    assert!(
        stats.rtt_fraction(OpType::Update, 1) > 0.90,
        "SWARM updates in 1 RTT: {}",
        stats.rtt_fraction(OpType::Update, 1)
    );
    assert_eq!(stats.rtt_percentile(OpType::Get, 99.0), 1);

    let sim = Sim::new(6);
    let ac = abd_cluster(&sim, 64);
    let abd = KvClient::new(&ac, Proto::Abd, 0, KvClientConfig::default());
    let stats = run_workload(
        &sim,
        &[abd],
        &Workload::ycsb(WorkloadSpec::B, 64, 64),
        &RunConfig {
            warmup_ops: 2_000,
            measure_ops: 2_000,
            record_rtts: true,
            ..Default::default()
        },
    );
    assert!(
        stats.rtt_fraction(OpType::Get, 2) > 0.9,
        "DM-ABD gets in 2 RTTs: {}",
        stats.rtt_fraction(OpType::Get, 2)
    );
    assert!(
        stats.rtt_fraction(OpType::Update, 2) > 0.9,
        "DM-ABD updates in 2 RTTs: {}",
        stats.rtt_fraction(OpType::Update, 2)
    );

    let sim = Sim::new(7);
    let fc = FuseeCluster::new(&sim, Default::default());
    fc.load_keys(64, |k| vec![k as u8; 64]);
    let fusee = FuseeKv::new(&fc, 0, 1 << 20);
    let stats = run_workload(
        &sim,
        &[fusee],
        &Workload::ycsb(WorkloadSpec::B, 64, 64),
        &RunConfig {
            warmup_ops: 2_000,
            measure_ops: 2_000,
            record_rtts: true,
            ..Default::default()
        },
    );
    let f1 = stats.rtt_fraction(OpType::Get, 1);
    let f2 = stats.rtt_fraction(OpType::Get, 2);
    assert!(f1 + f2 > 0.99, "FUSEE gets 1-2 RTTs: {f1}+{f2}");
    assert!(f1 > 0.5, "most FUSEE gets cached: {f1}");
    assert!(
        stats.rtt_fraction(OpType::Update, 4) > 0.9,
        "FUSEE updates in 4 RTTs: {}",
        stats.rtt_fraction(OpType::Update, 4)
    );

    let sim = Sim::new(8);
    let rc = raw_cluster(&sim, 64);
    let raw = KvClient::new(&rc, Proto::Raw, 0, KvClientConfig::default());
    let stats = run_workload(
        &sim,
        &[raw],
        &Workload::ycsb(WorkloadSpec::B, 64, 64),
        &RunConfig {
            warmup_ops: 2_000,
            measure_ops: 2_000,
            record_rtts: true,
            ..Default::default()
        },
    );
    assert!(stats.rtt_fraction(OpType::Get, 1) > 0.99);
    assert!(stats.rtt_fraction(OpType::Update, 1) > 0.99);
}

/// §7.1 calibration: median latencies must land near the paper's
/// measurements (RAW 1.9/1.6 µs, SWARM 2.4/3.1 µs, DM-ABD 4.3/4.9 µs,
/// FUSEE ~2.9 µs fresh gets / 8.5 µs updates).
#[test]
fn latency_medians_match_paper_shape() {
    let run = |stats: &mut swarm_kv::RunStats, op| stats.lat(op).median() as f64 / 1_000.0;
    let cfg = RunConfig {
        warmup_ops: 2_000,
        measure_ops: 10_000,
        ..Default::default()
    };
    let wl = Workload::ycsb(WorkloadSpec::B, 1_000, 64);

    let sim = Sim::new(10);
    let c = raw_cluster(&sim, 1_000);
    let clients: Vec<_> = (0..4)
        .map(|i| KvClient::new(&c, Proto::Raw, i, KvClientConfig::default()))
        .collect();
    let mut stats = run_workload(&sim, &clients, &wl, &cfg);
    let (raw_get, raw_upd) = (
        run(&mut stats, OpType::Get),
        run(&mut stats, OpType::Update),
    );

    let sim = Sim::new(11);
    let c = swarm_cluster(&sim, 1_000);
    let clients: Vec<_> = (0..4)
        .map(|i| KvClient::new(&c, Proto::SafeGuess, i, KvClientConfig::default()))
        .collect();
    let mut stats = run_workload(&sim, &clients, &wl, &cfg);
    let (sw_get, sw_upd) = (
        run(&mut stats, OpType::Get),
        run(&mut stats, OpType::Update),
    );

    let sim = Sim::new(12);
    let c = abd_cluster(&sim, 1_000);
    let clients: Vec<_> = (0..4)
        .map(|i| KvClient::new(&c, Proto::Abd, i, KvClientConfig::default()))
        .collect();
    let mut stats = run_workload(&sim, &clients, &wl, &cfg);
    let (abd_get, abd_upd) = (
        run(&mut stats, OpType::Get),
        run(&mut stats, OpType::Update),
    );

    let sim = Sim::new(13);
    let c = FuseeCluster::new(&sim, Default::default());
    c.load_keys(1_000, |k| vec![k as u8; 64]);
    let clients: Vec<_> = (0..4).map(|i| FuseeKv::new(&c, i, 1 << 20)).collect();
    let mut stats = run_workload(&sim, &clients, &wl, &cfg);
    let (fu_get, fu_upd) = (
        run(&mut stats, OpType::Get),
        run(&mut stats, OpType::Update),
    );

    eprintln!("medians (µs): RAW {raw_get:.2}/{raw_upd:.2}  SWARM {sw_get:.2}/{sw_upd:.2}  DM-ABD {abd_get:.2}/{abd_upd:.2}  FUSEE {fu_get:.2}/{fu_upd:.2}");

    // Absolute calibration, ±30% of the paper's medians.
    let near = |x: f64, target: f64| (x - target).abs() / target < 0.30;
    assert!(near(raw_get, 1.9), "RAW get {raw_get:.2} vs 1.9");
    assert!(near(raw_upd, 1.6), "RAW update {raw_upd:.2} vs 1.6");
    assert!(near(sw_get, 2.4), "SWARM get {sw_get:.2} vs 2.4");
    assert!(near(sw_upd, 3.1), "SWARM update {sw_upd:.2} vs 3.1");
    assert!(near(abd_get, 4.3), "DM-ABD get {abd_get:.2} vs 4.3");
    assert!(near(abd_upd, 4.9), "DM-ABD update {abd_upd:.2} vs 4.9");
    assert!(near(fu_upd, 8.5), "FUSEE update {fu_upd:.2} vs 8.5");

    // Relative ordering (the paper's headline claims).
    assert!(raw_get < sw_get && sw_get < fu_get.max(abd_get));
    assert!(sw_upd < abd_upd && abd_upd < fu_upd);
}

#[test]
fn cache_miss_costs_an_index_roundtrip() {
    let sim = Sim::new(14);
    let cluster = swarm_cluster(&sim, 64);
    let c = KvClient::new(
        &cluster,
        Proto::SafeGuess,
        0,
        KvClientConfig { cache_entries: 4 },
    );
    let c2 = Rc::clone(&c);
    sim.block_on(async move {
        c2.get(1).await.unwrap(); // miss -> index (2 rtts total)
        let r0 = c2.rounds();
        c2.get(1).await.unwrap(); // hit  (1 rtt)
        let hit_rtts = c2.rounds() - r0;
        assert_eq!(hit_rtts, 1);
        // A never-before-touched key always misses the cache.
        let r0 = c2.rounds();
        c2.get(40).await.unwrap();
        let miss_rtts = c2.rounds() - r0;
        assert_eq!(miss_rtts, 2, "cache miss should add exactly 1 RTT");
    });
}

#[test]
fn runner_reports_throughput_and_latency() {
    let sim = Sim::new(15);
    let cluster = swarm_cluster(&sim, 128);
    let clients: Vec<_> = (0..2)
        .map(|i| KvClient::new(&cluster, Proto::SafeGuess, i, KvClientConfig::default()))
        .collect();
    let stats = run_workload(
        &sim,
        &clients,
        &Workload::ycsb(WorkloadSpec::A, 128, 64),
        &RunConfig {
            warmup_ops: 200,
            measure_ops: 1_000,
            ..Default::default()
        },
    );
    assert_eq!(stats.measured_ops, 1_000);
    assert_eq!(stats.failed_ops, 0);
    assert!(
        stats.throughput_ops() > 50_000.0,
        "{}",
        stats.throughput_ops()
    );
    assert!(stats.lat(OpType::Get).len() > 300);
    assert!(stats.lat(OpType::Update).len() > 300);
}

#[test]
fn concurrent_ops_increase_throughput() {
    let tput = |conc: usize| {
        let sim = Sim::new(16);
        let cluster = swarm_cluster(&sim, 512);
        let clients: Vec<_> = (0..4)
            .map(|i| KvClient::new(&cluster, Proto::SafeGuess, i, KvClientConfig::default()))
            .collect();
        run_workload(
            &sim,
            &clients,
            &Workload::ycsb(WorkloadSpec::B, 512, 64),
            &RunConfig {
                warmup_ops: 500,
                measure_ops: 4_000,
                concurrency: conc,
                ..Default::default()
            },
        )
        .throughput_ops()
    };
    let t1 = tput(1);
    let t3 = tput(3);
    assert!(
        t3 > t1 * 1.5,
        "3 concurrent ops should raise throughput: {t1} -> {t3}"
    );
}
