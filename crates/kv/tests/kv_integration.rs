//! End-to-end tests of the four key-value stores: protocol semantics
//! (§5.3), Table 2 roundtrip counts, §7.1 latency calibration, and the
//! unified `StoreBuilder` + typed `KvStore` + batched `KvStoreExt` surface.

use std::rc::Rc;

use swarm_kv::{
    run_workload, CacheCapacity, KvClientConfig, KvError, KvStore, KvStoreExt, Protocol, RunConfig,
    StoreBuilder, StoreCluster,
};
use swarm_sim::Sim;
use swarm_workload::{OpType, Workload, WorkloadSpec};

fn built(sim: &Sim, proto: Protocol, n_keys: u64) -> StoreCluster {
    let cluster = StoreBuilder::new(proto).build_cluster(sim);
    cluster.load_keys(n_keys, |k| vec![k as u8; 64]);
    cluster
}

#[test]
fn swarm_kv_get_update_delete_reinsert() {
    let sim = Sim::new(1);
    let cluster = built(&sim, Protocol::SafeGuess, 8);
    let c = cluster.client(0);
    sim.block_on(async move {
        assert_eq!(*c.get(3).await.unwrap().unwrap(), vec![3u8; 64]);
        c.update(3, vec![9u8; 64]).await.unwrap();
        assert_eq!(*c.get(3).await.unwrap().unwrap(), vec![9u8; 64]);
        c.delete(3).await.unwrap();
        assert_eq!(c.get(3).await, Ok(None));
        // Depending on whether the deleter's asynchronous index unmap has
        // landed, the rejected update sees the tombstone or the missing
        // mapping — both refuse the write.
        let err = c.update(3, vec![1u8; 64]).await.unwrap_err();
        assert!(
            matches!(err, KvError::Deleted | KvError::NotIndexed),
            "update after delete: {err:?}"
        );
        // Re-insert through fresh replicas (§5.3.1).
        c.insert(3, vec![5u8; 64]).await.unwrap();
        assert_eq!(*c.get(3).await.unwrap().unwrap(), vec![5u8; 64]);
    });
}

#[test]
fn swarm_kv_insert_fresh_key_is_visible_to_other_clients() {
    let sim = Sim::new(2);
    let cluster = built(&sim, Protocol::SafeGuess, 4);
    let a = cluster.client(0);
    let b = cluster.client(1);
    sim.block_on(async move {
        assert_eq!(b.get(100).await, Ok(None), "unindexed key must miss");
        a.insert(100, vec![0xAA; 64]).await.unwrap();
        assert_eq!(*b.get(100).await.unwrap().unwrap(), vec![0xAA; 64]);
    });
}

#[test]
fn updates_by_one_client_are_read_by_another() {
    let sim = Sim::new(3);
    let cluster = built(&sim, Protocol::SafeGuess, 4);
    let a = cluster.client(0);
    let b = cluster.client(1);
    sim.block_on(async move {
        for i in 1..20u8 {
            a.update(2, vec![i; 64]).await.unwrap();
            assert_eq!(*b.get(2).await.unwrap().unwrap(), vec![i; 64]);
        }
    });
}

/// The shared suite of the acceptance criteria: every protocol constructed
/// through `StoreBuilder`, exercised through the typed `KvStore` trait and
/// the batched `KvStoreExt` extension.
#[test]
fn store_builder_shared_suite_covers_all_four_protocols() {
    for (i, proto) in Protocol::all().into_iter().enumerate() {
        let sim = Sim::new(40 + i as u64);
        let cluster = built(&sim, proto, 16);
        assert_eq!(cluster.protocol(), proto);
        let c = cluster.client(0);
        sim.block_on(async move {
            // Typed single-key ops.
            assert_eq!(
                *c.get(3).await.unwrap().unwrap(),
                vec![3u8; 64],
                "{}: get",
                proto.name()
            );
            c.update(3, vec![9u8; 64]).await.unwrap();
            assert_eq!(*c.get(3).await.unwrap().unwrap(), vec![9u8; 64]);
            c.insert(200, vec![7u8; 64]).await.unwrap();
            assert_eq!(*c.get(200).await.unwrap().unwrap(), vec![7u8; 64]);
            assert_eq!(c.get(999).await, Ok(None), "{}: absent key", proto.name());

            // Batched ops return element-wise results in input order.
            let pairs: Vec<(u64, Vec<u8>)> =
                (4..8u64).map(|k| (k, vec![k as u8 + 100; 64])).collect();
            let updated = c.multi_update(&pairs).await;
            assert!(updated.iter().all(|r| r.is_ok()), "{}", proto.name());
            let keys: Vec<u64> = (4..8).collect();
            let got = c.multi_get(&keys).await;
            for (j, r) in got.iter().enumerate() {
                assert_eq!(
                    **r.as_ref().unwrap().as_ref().unwrap(),
                    vec![keys[j] as u8 + 100; 64],
                    "{}: multi_get[{j}]",
                    proto.name()
                );
            }
            let fresh: Vec<(u64, Vec<u8>)> =
                (300..303u64).map(|k| (k, vec![k as u8; 64])).collect();
            let inserted = c.multi_insert(&fresh).await;
            assert!(inserted.iter().all(|r| r.is_ok()), "{}", proto.name());

            // Delete semantics (RAW has no tombstones, so absence through
            // the asynchronous index unmap is not deterministic there).
            if proto != Protocol::Raw {
                c.delete(200).await.unwrap();
                assert_eq!(c.get(200).await, Ok(None), "{}: deleted", proto.name());
                assert_eq!(c.delete(999).await, Err(KvError::NotFound));
            }
        });
    }
}

/// §7.2 / acceptance: a multi_get of 8 independent *cached* keys costs
/// about one quorum roundtrip of latency, not eight.
#[test]
fn multi_get_of_cached_keys_is_one_roundtrip_not_n() {
    let sim = Sim::new(44);
    let cluster = built(&sim, Protocol::SafeGuess, 16);
    let c = cluster.client(0);
    let s = sim.clone();
    sim.block_on(async move {
        let keys: Vec<u64> = (0..8).collect();
        // Warm the location cache.
        for &k in &keys {
            c.get(k).await.unwrap();
        }
        // Sequential baseline.
        let t0 = s.now();
        for &k in &keys {
            c.get(k).await.unwrap();
        }
        let sequential = s.now() - t0;
        // Pipelined batch.
        let t0 = s.now();
        let got = c.multi_get(&keys).await;
        let batched = s.now() - t0;
        assert!(got.iter().all(|r| matches!(r, Ok(Some(_)))));
        // The 8 quorum reads overlap in flight; what still serializes is
        // work-request submission on the client CPU (§7.2's wall). The
        // batch must land far below 8 sequential roundtrips.
        let single = sequential / 8;
        assert!(
            batched < 3 * single,
            "8-key batch should cost ~1 RTT of latency: batch {batched} ns vs single {single} ns"
        );
        assert!(
            2 * batched < sequential,
            "8-key batch must beat half of 8 sequential gets: {batched} vs {sequential} ns"
        );
    });
}

#[test]
fn index_capacity_surfaces_index_full() {
    let sim = Sim::new(45);
    let cluster = StoreBuilder::new(Protocol::SafeGuess)
        .index_capacity(8)
        .build_cluster(&sim);
    cluster.load_keys(8, |k| vec![k as u8; 64]);
    let c = cluster.client(0);
    sim.block_on(async move {
        assert_eq!(
            c.insert(100, vec![1u8; 64]).await,
            Err(KvError::IndexFull),
            "fresh insert beyond index capacity"
        );
        // Existing keys still update fine.
        c.insert(3, vec![2u8; 64]).await.unwrap();
    });
}

#[test]
fn dm_abd_and_raw_basics() {
    let sim = Sim::new(4);
    let ac = built(&sim, Protocol::Abd, 4);
    let rc = built(&sim, Protocol::Raw, 4);
    let abd = ac.client(0);
    let raw = rc.client(0);
    sim.block_on(async move {
        assert_eq!(*abd.get(1).await.unwrap().unwrap(), vec![1u8; 64]);
        abd.update(1, vec![7u8; 64]).await.unwrap();
        assert_eq!(*abd.get(1).await.unwrap().unwrap(), vec![7u8; 64]);
        assert_eq!(*raw.get(1).await.unwrap().unwrap(), vec![1u8; 64]);
        raw.update(1, vec![8u8; 64]).await.unwrap();
        assert_eq!(*raw.get(1).await.unwrap().unwrap(), vec![8u8; 64]);
    });
}

/// Table 2: common-case roundtrip counts per system.
#[test]
fn table2_roundtrip_counts() {
    let run_one = |seed: u64, proto: Protocol| {
        let sim = Sim::new(seed);
        let cluster = built(&sim, proto, 64);
        let clients = vec![cluster.client(0)];
        run_workload(
            &sim,
            &clients,
            &Workload::ycsb(WorkloadSpec::B, 64, 64),
            &RunConfig {
                warmup_ops: 2_000,
                measure_ops: 2_000,
                record_rtts: true,
                ..Default::default()
            },
        )
    };

    let stats = run_one(5, Protocol::SafeGuess);
    assert!(
        stats.rtt_fraction(OpType::Get, 1) > 0.95,
        "SWARM gets in 1 RTT: {}",
        stats.rtt_fraction(OpType::Get, 1)
    );
    assert!(
        stats.rtt_fraction(OpType::Update, 1) > 0.90,
        "SWARM updates in 1 RTT: {}",
        stats.rtt_fraction(OpType::Update, 1)
    );
    assert_eq!(stats.rtt_percentile(OpType::Get, 99.0), 1);

    let stats = run_one(6, Protocol::Abd);
    assert!(
        stats.rtt_fraction(OpType::Get, 2) > 0.9,
        "DM-ABD gets in 2 RTTs: {}",
        stats.rtt_fraction(OpType::Get, 2)
    );
    assert!(
        stats.rtt_fraction(OpType::Update, 2) > 0.9,
        "DM-ABD updates in 2 RTTs: {}",
        stats.rtt_fraction(OpType::Update, 2)
    );

    let stats = run_one(7, Protocol::Fusee);
    let f1 = stats.rtt_fraction(OpType::Get, 1);
    let f2 = stats.rtt_fraction(OpType::Get, 2);
    assert!(f1 + f2 > 0.99, "FUSEE gets 1-2 RTTs: {f1}+{f2}");
    assert!(f1 > 0.5, "most FUSEE gets cached: {f1}");
    assert!(
        stats.rtt_fraction(OpType::Update, 4) > 0.9,
        "FUSEE updates in 4 RTTs: {}",
        stats.rtt_fraction(OpType::Update, 4)
    );

    let stats = run_one(8, Protocol::Raw);
    assert!(stats.rtt_fraction(OpType::Get, 1) > 0.99);
    assert!(stats.rtt_fraction(OpType::Update, 1) > 0.99);
}

/// §7.1 calibration: median latencies must land near the paper's
/// measurements (RAW 1.9/1.6 µs, SWARM 2.4/3.1 µs, DM-ABD 4.3/4.9 µs,
/// FUSEE ~2.9 µs fresh gets / 8.5 µs updates).
#[test]
fn latency_medians_match_paper_shape() {
    let cfg = RunConfig {
        warmup_ops: 2_000,
        measure_ops: 10_000,
        ..Default::default()
    };
    let wl = Workload::ycsb(WorkloadSpec::B, 1_000, 64);
    let medians = |seed: u64, proto: Protocol| {
        let sim = Sim::new(seed);
        let cluster = built(&sim, proto, 1_000);
        let clients = cluster.clients(4);
        let stats = run_workload(&sim, &clients, &wl, &cfg);
        (
            stats.lat(OpType::Get).median() as f64 / 1e3,
            stats.lat(OpType::Update).median() as f64 / 1e3,
        )
    };

    let (raw_get, raw_upd) = medians(10, Protocol::Raw);
    let (sw_get, sw_upd) = medians(11, Protocol::SafeGuess);
    let (abd_get, abd_upd) = medians(12, Protocol::Abd);
    let (fu_get, fu_upd) = medians(13, Protocol::Fusee);

    eprintln!("medians (µs): RAW {raw_get:.2}/{raw_upd:.2}  SWARM {sw_get:.2}/{sw_upd:.2}  DM-ABD {abd_get:.2}/{abd_upd:.2}  FUSEE {fu_get:.2}/{fu_upd:.2}");

    // Absolute calibration, ±30% of the paper's medians.
    let near = |x: f64, target: f64| (x - target).abs() / target < 0.30;
    assert!(near(raw_get, 1.9), "RAW get {raw_get:.2} vs 1.9");
    assert!(near(raw_upd, 1.6), "RAW update {raw_upd:.2} vs 1.6");
    assert!(near(sw_get, 2.4), "SWARM get {sw_get:.2} vs 2.4");
    assert!(near(sw_upd, 3.1), "SWARM update {sw_upd:.2} vs 3.1");
    assert!(near(abd_get, 4.3), "DM-ABD get {abd_get:.2} vs 4.3");
    assert!(near(abd_upd, 4.9), "DM-ABD update {abd_upd:.2} vs 4.9");
    assert!(near(fu_upd, 8.5), "FUSEE update {fu_upd:.2} vs 8.5");

    // Relative ordering (the paper's headline claims).
    assert!(raw_get < sw_get && sw_get < fu_get.max(abd_get));
    assert!(sw_upd < abd_upd && abd_upd < fu_upd);
}

#[test]
fn cache_miss_costs_an_index_roundtrip() {
    let sim = Sim::new(14);
    let cluster = StoreBuilder::new(Protocol::SafeGuess)
        .client_config(KvClientConfig {
            cache: CacheCapacity::Entries(4),
            ..Default::default()
        })
        .build_cluster(&sim);
    cluster.load_keys(64, |k| vec![k as u8; 64]);
    let c = cluster.client(0);
    sim.block_on(async move {
        c.get(1).await.unwrap().unwrap(); // miss -> index (2 rtts total)
        let r0 = c.rounds();
        c.get(1).await.unwrap().unwrap(); // hit  (1 rtt)
        let hit_rtts = c.rounds() - r0;
        assert_eq!(hit_rtts, 1);
        // A never-before-touched key always misses the cache.
        let r0 = c.rounds();
        c.get(40).await.unwrap().unwrap();
        let miss_rtts = c.rounds() - r0;
        assert_eq!(miss_rtts, 2, "cache miss should add exactly 1 RTT");
    });
}

#[test]
fn runner_reports_throughput_and_latency() {
    let sim = Sim::new(15);
    let cluster = built(&sim, Protocol::SafeGuess, 128);
    let clients = cluster.clients(2);
    let stats = run_workload(
        &sim,
        &clients,
        &Workload::ycsb(WorkloadSpec::A, 128, 64),
        &RunConfig {
            warmup_ops: 200,
            measure_ops: 1_000,
            ..Default::default()
        },
    );
    assert_eq!(stats.measured_ops, 1_000);
    assert_eq!(stats.failed_ops, 0);
    assert!(
        stats.throughput_ops() > 50_000.0,
        "{}",
        stats.throughput_ops()
    );
    assert!(stats.lat(OpType::Get).len() > 300);
    assert!(stats.lat(OpType::Update).len() > 300);
}

#[test]
fn concurrent_ops_increase_throughput() {
    let tput = |conc: usize| {
        let sim = Sim::new(16);
        let cluster = built(&sim, Protocol::SafeGuess, 512);
        let clients = cluster.clients(4);
        run_workload(
            &sim,
            &clients,
            &Workload::ycsb(WorkloadSpec::B, 512, 64),
            &RunConfig {
                warmup_ops: 500,
                measure_ops: 4_000,
                concurrency: conc,
                ..Default::default()
            },
        )
        .throughput_ops()
    };
    let t1 = tput(1);
    let t3 = tput(3);
    assert!(
        t3 > t1 * 1.5,
        "3 concurrent ops should raise throughput: {t1} -> {t3}"
    );
}

#[test]
fn batched_runner_mode_works_through_the_builder() {
    let sim = Sim::new(17);
    let cluster = built(&sim, Protocol::SafeGuess, 256);
    let clients = cluster.clients(2);
    let stats = run_workload(
        &sim,
        &clients,
        &Workload::ycsb(WorkloadSpec::B, 256, 64),
        &RunConfig {
            warmup_ops: 200,
            measure_ops: 2_000,
            batch: 8,
            ..Default::default()
        },
    );
    assert_eq!(stats.measured_ops, 2_000);
    assert_eq!(stats.failed_ops, 0);
    let _ = Rc::strong_count(&clients[0]);
}

// ---- KvError paths under injected faults ----

#[test]
fn timeout_is_surfaced_not_panicked_when_the_quorum_is_unreachable() {
    // Crash every memory node: no quorum can form. With a per-op deadline
    // the replicated store must *return* `Timeout`, not hang or panic.
    for proto in [Protocol::SafeGuess, Protocol::Abd] {
        let sim = Sim::new(40);
        let cluster = StoreBuilder::new(proto)
            .op_deadline_ns(500_000)
            .build_cluster(&sim);
        cluster.load_keys(4, |k| vec![k as u8; 64]);
        for n in cluster.fabric().node_ids() {
            cluster.crash_node(n);
        }
        let c = cluster.client(0);
        sim.block_on(async move {
            assert_eq!(c.get(1).await, Err(KvError::Timeout), "{proto:?} get");
            assert_eq!(
                c.update(1, vec![7u8; 64]).await,
                Err(KvError::Timeout),
                "{proto:?} update"
            );
        });
    }
}

#[test]
fn raw_times_out_when_its_single_replica_is_partitioned() {
    let sim = Sim::new(41);
    let cluster = StoreBuilder::new(Protocol::Raw)
        .op_deadline_ns(300_000)
        .build_cluster(&sim);
    cluster.load_keys(4, |k| vec![k as u8; 64]);
    let node = cluster.swarm().unwrap().replica_nodes_for(2)[0];
    cluster.fabric().partition_node(node);
    let c = cluster.client(0);
    let cluster2 = cluster.clone();
    sim.block_on(async move {
        assert_eq!(c.get(2).await, Err(KvError::Timeout));
        // Healing the partition restores the key: memory was never lost.
        cluster2.fabric().heal_node(node);
        assert_eq!(*c.get(2).await.unwrap().unwrap(), vec![2u8; 64]);
    });
}

#[test]
fn index_full_and_not_found_are_unchanged_mid_partition() {
    // Partition one node: the replicated store stays available via quorum
    // widening, and the *semantic* errors keep their meaning — a full index
    // still refuses fresh mappings with IndexFull (not Timeout), and a
    // delete of an absent key still reports NotFound.
    let sim = Sim::new(42);
    let cluster = StoreBuilder::new(Protocol::SafeGuess)
        .index_capacity(4)
        .op_deadline_ns(2_000_000)
        .build_cluster(&sim);
    cluster.load_keys(4, |k| vec![k as u8; 64]);
    cluster.fabric().partition_node(swarm_fabric::NodeId(1));
    let c = cluster.client(0);
    sim.block_on(async move {
        assert_eq!(
            c.insert(100, vec![1u8; 64]).await,
            Err(KvError::IndexFull),
            "capacity refusal must survive a partition"
        );
        assert_eq!(
            c.delete(200).await,
            Err(KvError::NotFound),
            "absent-key delete must survive a partition"
        );
        // Existing keys stay readable and writable through the quorum.
        c.update(1, vec![9u8; 64]).await.unwrap();
        assert_eq!(*c.get(1).await.unwrap().unwrap(), vec![9u8; 64]);
    });
}

#[test]
fn fusee_surfaces_timeout_under_crash() {
    let sim = Sim::new(43);
    let cluster = StoreBuilder::new(Protocol::Fusee)
        .op_deadline_ns(500_000)
        .build_cluster(&sim);
    cluster.load_keys(8, |k| vec![k as u8; 64]);
    for n in cluster.fabric().node_ids() {
        cluster.crash_node(n);
    }
    let c = cluster.client(0);
    sim.block_on(async move {
        assert_eq!(c.get(1).await, Err(KvError::Timeout));
        assert_eq!(c.update(1, vec![7u8; 64]).await, Err(KvError::Timeout));
    });
}

// ---------------------------------------------------------------------------
// Sharded clusters and the cross-shard router.

/// Every protocol works sharded: keys land on their owning shard, reads
/// through a router see writes through another router, and only the owning
/// shard's index carries the mapping.
#[test]
fn sharded_cluster_basics_across_all_protocols() {
    for proto in Protocol::all() {
        let sim = Sim::new(51);
        let cluster = StoreBuilder::new(proto)
            .shards(4)
            .max_clients(2)
            .build_sharded(&sim);
        cluster.load_keys(64, |k| vec![k as u8; 64]);
        // Loading routed by ownership: the four shard indexes partition the
        // keyspace (the Cluster-based protocols expose their index sizes).
        if cluster.shard(0).swarm().is_some() {
            let indexed: usize = (0..4)
                .map(|s| cluster.shard(s).swarm().unwrap().index().len())
                .sum();
            assert_eq!(
                indexed,
                64,
                "{}: shard indexes must partition",
                proto.name()
            );
        }
        let a = cluster.router(0);
        let b = cluster.router(1);
        sim.block_on(async move {
            assert_eq!(*a.get(3).await.unwrap().unwrap(), vec![3u8; 64]);
            b.update(3, vec![9u8; 64]).await.unwrap();
            assert_eq!(
                *a.get(3).await.unwrap().unwrap(),
                vec![9u8; 64],
                "{}: cross-router visibility",
                proto.name()
            );
        });
    }
}

/// Cross-shard `multi_get` returns results in input order, whatever shards
/// the keys hash to, including duplicates.
#[test]
fn cross_shard_multi_get_preserves_input_order() {
    let sim = Sim::new(52);
    let cluster = StoreBuilder::new(Protocol::SafeGuess)
        .shards(8)
        .max_clients(2)
        .build_sharded(&sim);
    cluster.load_keys(256, |k| vec![k as u8; 64]);
    let r = cluster.router(0);
    // Keys deliberately out of order, spanning shards, with a duplicate.
    let keys: Vec<u64> = vec![200, 3, 77, 3, 255, 0, 131, 64, 19];
    sim.block_on(async move {
        let got = r.multi_get(&keys).await;
        assert_eq!(got.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(
                **got[i].as_ref().unwrap().as_ref().unwrap(),
                vec![k as u8; 64],
                "result {i} must be key {k}'s value"
            );
        }
        // The generic KvStoreExt path routes identically.
        let ext = KvStoreExt::multi_get(&*r, &keys).await;
        for (a, b) in got.iter().zip(&ext) {
            assert_eq!(a, b, "router multi_get must agree with the ext path");
        }
    });
}

/// Batched mutations route per shard and report per-element results in
/// input order.
#[test]
fn cross_shard_multi_update_and_insert_route_correctly() {
    let sim = Sim::new(53);
    let cluster = StoreBuilder::new(Protocol::SafeGuess)
        .shards(4)
        .max_clients(2)
        .build_sharded(&sim);
    cluster.load_keys(32, |k| vec![k as u8; 64]);
    let r = cluster.router(0);
    sim.block_on(async move {
        let updates: Vec<(u64, Vec<u8>)> = (0..32).map(|k| (k, vec![0xA0; 64])).collect();
        assert!(r.multi_update(&updates).await.iter().all(Result::is_ok));
        // Updating a never-inserted key fails element-wise, in place.
        let mixed: Vec<(u64, Vec<u8>)> = vec![(1, vec![1; 64]), (999, vec![2; 64])];
        let res = r.multi_update(&mixed).await;
        assert_eq!(res[0], Ok(()));
        assert_eq!(res[1], Err(KvError::NotIndexed));
        // Fresh inserts land on their owning shards and read back anywhere.
        let inserts: Vec<(u64, Vec<u8>)> = (1000..1032).map(|k| (k, vec![0xB0; 64])).collect();
        assert!(r.multi_insert(&inserts).await.iter().all(Result::is_ok));
        for k in 1000..1032 {
            assert_eq!(*r.get(k).await.unwrap().unwrap(), vec![0xB0; 64]);
        }
    });
}

/// One shard hitting its index capacity must refuse inserts with
/// `IndexFull` while every other shard keeps accepting.
#[test]
fn per_shard_index_full_leaves_other_shards_accepting() {
    let sim = Sim::new(54);
    let cluster = StoreBuilder::new(Protocol::SafeGuess)
        .shards(4)
        .max_clients(2)
        .index_capacity(4)
        .build_sharded(&sim);
    let spec = cluster.spec();
    // Fill shard 0 to its cap through the control plane.
    let shard0_keys: Vec<u64> = (0..).filter(|&k| spec.shard_of(k) == 0).take(4).collect();
    for &k in &shard0_keys {
        cluster.load_key(k, &[k as u8; 64]);
    }
    let r = cluster.router(0);
    sim.block_on(async move {
        // A fresh insert owned by shard 0 must be refused...
        let fresh0 = (1_000_000..).find(|&k| spec.shard_of(k) == 0).unwrap();
        assert_eq!(
            r.insert(fresh0, vec![7u8; 64]).await,
            Err(KvError::IndexFull),
            "shard 0 is at capacity"
        );
        // ...while inserts owned by the other shards all succeed.
        for s in 1..4 {
            let k = (2_000_000..).find(|&k| spec.shard_of(k) == s).unwrap();
            r.insert(k, vec![8u8; 64]).await.unwrap();
            assert_eq!(*r.get(k).await.unwrap().unwrap(), vec![8u8; 64]);
        }
    });
}

/// The YCSB runner drives routers exactly like plain clients, and the
/// router's routed-op counters plus the per-shard fabric stats account for
/// all the traffic.
#[test]
fn runner_drives_sharded_routers_with_per_shard_stats() {
    let sim = Sim::new(55);
    let cluster = StoreBuilder::new(Protocol::SafeGuess)
        .shards(4)
        .max_clients(3)
        .build_sharded(&sim);
    cluster.load_keys(512, |k| vec![k as u8; 64]);
    let routers = cluster.routers(3);
    let stats = run_workload(
        &sim,
        &routers,
        &Workload::ycsb(WorkloadSpec::B, 512, 64),
        &RunConfig {
            warmup_ops: 200,
            measure_ops: 2_000,
            ..Default::default()
        },
    );
    assert_eq!(stats.measured_ops, 2_000);
    assert_eq!(stats.failed_ops, 0);
    assert!(stats.throughput_ops() > 0.0);
    // Every shard saw traffic, and the aggregate equals the per-shard sum.
    let per_shard = cluster.per_shard_stats();
    assert!(per_shard.iter().all(|s| s.messages > 0));
    let total = cluster.stats();
    assert_eq!(
        total.messages,
        per_shard.iter().map(|s| s.messages).sum::<u64>()
    );
    // Routed-op counters cover warmup + measured ops across the routers.
    let routed: u64 = routers
        .iter()
        .map(|r| r.routed_per_shard().iter().sum::<u64>())
        .sum();
    assert!(routed >= 2_200, "routers routed only {routed} ops");
}
