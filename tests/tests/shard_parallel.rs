//! Bit-parity of the one-`Sim`-per-shard parallel driver: a planned
//! sharded workload must produce *identical* per-shard histories, traffic
//! counters, and statistics whether the shards run sequentially on one
//! thread, work-stealing on N OS threads, or all together on one shared
//! simulation — across seeds, batch sizes, and mid-run per-shard fault
//! plans.
//!
//! This is the contract that makes threaded sharded runs trustworthy: any
//! cross-thread nondeterminism, any hidden shared-stream RNG draw, or any
//! event-order dependence between shards would show up here as a byte
//! diff.

use swarm_fabric::{FaultPlan, NodeId};
use swarm_kv::{
    plan_workload, run_sharded_plan, OpOutcome, Protocol, RunConfig, ShardMode, ShardRunOptions,
    ShardSpec, ShardedRun, StoreBuilder,
};
use swarm_sim::{NANOS_PER_MICRO, NANOS_PER_MILLI};
use swarm_workload::{Workload, WorkloadSpec};

const SHARDS: usize = 4;
const ROUTERS: usize = 3;
const N_KEYS: u64 = 96;
const VALUE_SIZE: usize = 64;

fn builder() -> StoreBuilder {
    StoreBuilder::new(Protocol::SafeGuess)
        .value_size(VALUE_SIZE)
        .max_clients(ROUTERS)
        .op_deadline_ns(2 * NANOS_PER_MILLI)
        .shards(SHARDS)
}

fn workload() -> Workload {
    Workload::ycsb(WorkloadSpec::A, N_KEYS, VALUE_SIZE)
}

fn run(seed: u64, mode: ShardMode, batch: usize, faults: Vec<(usize, FaultPlan)>) -> ShardedRun {
    let b = builder();
    let wl = workload();
    let cfg = RunConfig {
        warmup_ops: 60,
        measure_ops: 300,
        batch,
        ..Default::default()
    };
    let plan = plan_workload(seed, ShardSpec::new(SHARDS), &wl, &cfg, ROUTERS);
    let opts = ShardRunOptions {
        preload_keys: Some(N_KEYS),
        faults,
        record_history: true,
        collect_results: true,
        watch_until_ns: Some(5 * NANOS_PER_MILLI),
        ..Default::default()
    };
    run_sharded_plan(&b, seed, &plan, &wl, &opts, mode)
}

/// Everything two runs must agree on, byte for byte. Latency histograms
/// have no equality; the histories (every op's invoke/response virtual
/// times and observed result) are the stronger witness, and the throughput
/// bits + op counts pin the derived statistics.
fn assert_runs_identical(a: &ShardedRun, b: &ShardedRun, what: &str) {
    assert_eq!(a.histories(), b.histories(), "{what}: histories diverged");
    assert_eq!(
        a.per_shard_traffic(),
        b.per_shard_traffic(),
        "{what}: per-shard traffic diverged"
    );
    assert_eq!(
        a.total_traffic(),
        b.total_traffic(),
        "{what}: aggregate traffic diverged"
    );
    assert_eq!(a.results(), b.results(), "{what}: op results diverged");
    let (sa, sb) = (a.merged_stats(), b.merged_stats());
    assert_eq!(sa.measured_ops, sb.measured_ops, "{what}: measured ops");
    assert_eq!(sa.failed_ops, sb.failed_ops, "{what}: failed ops");
    assert_eq!(
        (sa.start_ns, sa.end_ns),
        (sb.start_ns, sb.end_ns),
        "{what}: measurement window"
    );
    assert_eq!(
        sa.throughput_ops().to_bits(),
        sb.throughput_ops().to_bits(),
        "{what}: throughput bits"
    );
    for (s, (oa, ob)) in a.per_shard().iter().zip(b.per_shard()).enumerate() {
        assert_eq!(
            oa.stats.measured_ops, ob.stats.measured_ops,
            "{what}: shard {s} measured ops"
        );
        assert_eq!(
            (oa.stats.start_ns, oa.stats.end_ns),
            (ob.stats.start_ns, ob.stats.end_ns),
            "{what}: shard {s} window"
        );
    }
}

/// The tentpole contract: threaded ≡ sequential ≡ single-Sim, for several
/// seeds and for `SWARM_SHARD_THREADS` ∈ {1, 2, cores}.
#[test]
fn threaded_sequential_and_single_sim_are_bit_identical() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for seed in [41u64, 42, 43, 44] {
        let sequential = run(seed, ShardMode::Sequential, 1, Vec::new());
        for (mode, name) in [
            (ShardMode::Threads(1), "threads=1"),
            (ShardMode::Threads(2), "threads=2"),
            (ShardMode::Threads(cores), "threads=cores"),
            (ShardMode::SingleSim, "single-sim"),
        ] {
            let other = run(seed, mode, 1, Vec::new());
            assert_runs_identical(&sequential, &other, &format!("seed {seed}, {name}"));
        }
        // The seed must actually feed the execution.
        let other_seed = run(seed + 100, ShardMode::Sequential, 1, Vec::new());
        assert_ne!(
            sequential.histories(),
            other_seed.histories(),
            "seed {seed}: distinct seeds must diverge"
        );
        // And every mode's history linearizes per shard.
        for (s, h) in sequential.histories().into_iter().enumerate() {
            h.check()
                .unwrap_or_else(|e| panic!("seed {seed}: shard {s} does not linearize: {e}"));
        }
    }
}

/// Parity holds for pipelined cross-shard batches too (each router batch
/// splits into per-shard slices), and batched results still reassemble
/// into input order.
#[test]
fn batched_parity_and_input_order_reassembly() {
    for seed in [61u64, 62] {
        let sequential = run(seed, ShardMode::Sequential, 8, Vec::new());
        let threaded = run(seed, ShardMode::Threads(2), 8, Vec::new());
        let shared = run(seed, ShardMode::SingleSim, 8, Vec::new());
        assert_runs_identical(
            &sequential,
            &threaded,
            &format!("seed {seed}, batched threads"),
        );
        assert_runs_identical(
            &sequential,
            &shared,
            &format!("seed {seed}, batched single-sim"),
        );

        let results = sequential.results();
        assert_eq!(results.len(), ROUTERS);
        assert_eq!(
            results.iter().map(Vec::len).sum::<usize>(),
            360,
            "seed {seed}: every planned op yields exactly one outcome"
        );
    }
}

/// Reads of preloaded keys reassemble to the exact preloaded payloads: on
/// a read-only workload every outcome is the `value_for(key, 0)` payload,
/// whichever shard served it and whichever thread drove that shard.
#[test]
fn read_only_results_match_preloaded_values() {
    let b = builder();
    let wl = Workload::ycsb(WorkloadSpec::C, N_KEYS, VALUE_SIZE);
    let cfg = RunConfig {
        warmup_ops: 0,
        measure_ops: 240,
        batch: 8,
        ..Default::default()
    };
    let plan = plan_workload(77, ShardSpec::new(SHARDS), &wl, &cfg, ROUTERS);
    let opts = ShardRunOptions {
        preload_keys: Some(N_KEYS),
        collect_results: true,
        ..Default::default()
    };
    let sequential = run_sharded_plan(&b, 77, &plan, &wl, &opts, ShardMode::Sequential);
    let threaded = run_sharded_plan(&b, 77, &plan, &wl, &opts, ShardMode::Threads(2));
    assert_eq!(sequential.results(), threaded.results());
    for router_results in sequential.results() {
        for outcome in router_results {
            match outcome {
                OpOutcome::Value(v) => {
                    assert_eq!(v.len(), VALUE_SIZE);
                }
                other => panic!("read-only run on preloaded keys must hit: {other:?}"),
            }
        }
    }
    let stats = sequential.merged_stats();
    assert_eq!(stats.measured_ops, 240);
    assert_eq!(
        stats.failed_ops, 0,
        "no absent reads on a preloaded keyspace"
    );
}

/// The fault plan of the chaos suite, aimed at one shard.
fn shard_fault_plan() -> FaultPlan {
    let us = NANOS_PER_MICRO;
    FaultPlan::new()
        .crash_at(60 * us, NodeId(0))
        .restart_at(300 * us, NodeId(0))
        .drop_window(80 * us, NodeId(2), 400, 250 * us)
}

/// Parity holds with per-shard fault plans playing out mid-run: crashes,
/// restarts, and drop windows on two different shards perturb those
/// shards identically in every mode.
#[test]
fn parity_holds_under_per_shard_fault_plans() {
    for seed in [51u64, 52] {
        let faults = || {
            vec![
                (0usize, shard_fault_plan()),
                (2usize, FaultPlan::random(seed, 4, 500 * NANOS_PER_MICRO)),
            ]
        };
        let sequential = run(seed, ShardMode::Sequential, 1, faults());
        let threaded = run(seed, ShardMode::Threads(2), 1, faults());
        let shared = run(seed, ShardMode::SingleSim, 1, faults());
        assert_runs_identical(
            &sequential,
            &threaded,
            &format!("seed {seed}, faulted threads"),
        );
        assert_runs_identical(
            &sequential,
            &shared,
            &format!("seed {seed}, faulted single-sim"),
        );
        // The faults must actually bite, and everything still linearizes.
        let healthy = run(seed, ShardMode::Sequential, 1, Vec::new());
        assert_ne!(
            healthy.per_shard_traffic()[0],
            sequential.per_shard_traffic()[0],
            "seed {seed}: the fault plan must perturb shard 0"
        );
        for (s, h) in sequential.histories().into_iter().enumerate() {
            h.check().unwrap_or_else(|e| {
                panic!("seed {seed}: faulted shard {s} does not linearize: {e}")
            });
        }
    }
}

/// Hedged runs keep the full parity contract: with hedging armed
/// aggressively (`min_samples = 2`) and a delay-spike plan making hedges
/// actually fire, threaded ≡ sequential ≡ single-Sim byte for byte, the
/// merged traffic reports a balanced hedge budget, and every per-shard
/// history still linearizes.
#[test]
fn hedged_runs_are_bit_identical_across_all_shard_modes() {
    let run_hedged = |seed: u64, mode: ShardMode| {
        let b = builder().hedge(swarm_kv::HedgeConfig {
            min_samples: 2,
            ..swarm_kv::HedgeConfig::on()
        });
        let wl = workload();
        let cfg = RunConfig {
            warmup_ops: 60,
            measure_ops: 300,
            ..Default::default()
        };
        let plan = plan_workload(seed, ShardSpec::new(SHARDS), &wl, &cfg, ROUTERS);
        let opts = ShardRunOptions {
            preload_keys: Some(N_KEYS),
            faults: vec![(
                1usize,
                FaultPlan::new().delay_spike(
                    40 * NANOS_PER_MICRO,
                    NodeId(1),
                    15 * NANOS_PER_MICRO,
                    400 * NANOS_PER_MICRO,
                ),
            )],
            record_history: true,
            collect_results: true,
            watch_until_ns: Some(5 * NANOS_PER_MILLI),
            ..Default::default()
        };
        run_sharded_plan(&b, seed, &plan, &wl, &opts, mode)
    };
    for seed in [71u64, 72] {
        let sequential = run_hedged(seed, ShardMode::Sequential);
        let threaded = run_hedged(seed, ShardMode::Threads(2));
        let shared = run_hedged(seed, ShardMode::SingleSim);
        assert_runs_identical(
            &sequential,
            &threaded,
            &format!("seed {seed}, hedged threads"),
        );
        assert_runs_identical(
            &sequential,
            &shared,
            &format!("seed {seed}, hedged single-sim"),
        );
        let total = sequential.total_traffic();
        assert_eq!(
            total.hedges_fired,
            total.hedges_won + total.duplicates_discarded,
            "seed {seed}: hedge budget leaked across shards"
        );
        for (s, h) in sequential.histories().into_iter().enumerate() {
            h.check().unwrap_or_else(|e| {
                panic!("seed {seed}: hedged shard {s} does not linearize: {e}")
            });
        }
    }
}
