//! Scenario-engine chaos suite: scan-heavy and TTL-churn scenario streams
//! driven through the history recorder while seeded fault plans play out,
//! every surviving history checked for linearizability — including the two
//! op shapes the base chaos suite never exercises:
//!
//! * **scans** (YCSB E): each returned `(key, value)` pair is recorded as
//!   an overlapping read observation, so a scan that stitches together a
//!   torn cross-shard view would fail the checker;
//! * **TTL expiry**: leases granted mid-run expire mid-run, and each
//!   expiry is replayed into the history as an ambiguous delete at the
//!   expiry instant (`KvHistory::expire`) — the checker then proves that a
//!   pre-expiry `Some` and a post-expiry `None` of the same key are both
//!   legal observations of one flexible event.
//!
//! Cells are pinned `(protocol, fault plan, seed)` triples (the base
//! suite's reproducibility convention, see `TESTING.md`); replaying one is
//! a matter of calling `run_cell` with the printed triple. The sweep runs
//! on the tombstone-backed protocols (SWARM and DM-ABD), matching the base
//! suite's insert/delete gating; the fault-free scan-equivalence property
//! in `scenario_props.rs` covers all four protocols.

use std::rc::Rc;

use swarm_core::KvHistory;
use swarm_fabric::{FaultPlan, NodeId};
use swarm_kv::{
    run_scenario, ttl_stamp_never, HistoryRecorder, Protocol, ScenarioRunConfig, StoreBuilder,
};
use swarm_sim::{Sim, NANOS_PER_MICRO, NANOS_PER_MILLI};
use swarm_workload::{Phase, ScenarioMix, ScenarioOpClass, ScenarioSpec, TtlSpec};

const KEYS: u64 = 16;
/// Logical value bytes; register slots are provisioned at `CAP + 8` for
/// the TTL expiry stamp.
const CAP: usize = 64;
const CLIENTS: usize = 2;
/// Tag space for bulk-loaded values, disjoint from scenario write tags
/// (which are `key * GOLDEN + stream_index`).
const INITIAL_TAG_BASE: u64 = 1 << 32;

fn tagged(tag: u64) -> Vec<u8> {
    let mut v = vec![0u8; CAP];
    v[..8].copy_from_slice(&tag.to_le_bytes());
    v
}

/// The scan+TTL scenario under test: a scan-heavy YCSB-E phase, then an
/// insert-bearing YCSB-D phase with the hot set rotated, every insert
/// carrying a 150 µs lease over a dedicated 8-key expiring range.
fn spec() -> ScenarioSpec {
    ScenarioSpec::new("scan_ttl_chaos", KEYS)
        .phase(Phase::new(60, ScenarioMix::E).theta(0.9))
        .phase(Phase::new(60, ScenarioMix::D).rotate(KEYS / 2))
        .scan_max_len(8)
        .ttl(TtlSpec {
            insert_pct: 100,
            ttl_ns: 150 * NANOS_PER_MICRO,
            ttl_keys: 8,
        })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanKind {
    /// A node dies and restarts (memory intact) while traffic continues.
    CrashRestart,
    /// A latency spike on one node plus a drop window on another.
    JitterAndDrop,
}

impl PlanKind {
    fn plan(self, seed: u64, nodes: usize) -> FaultPlan {
        let us = NANOS_PER_MICRO;
        let a = NodeId(seed as usize % nodes);
        let b = NodeId((seed as usize + 1) % nodes);
        match self {
            PlanKind::CrashRestart => FaultPlan::new()
                .crash_at(60 * us, a)
                .restart_at(260 * us, a),
            PlanKind::JitterAndDrop => FaultPlan::new()
                .delay_spike(40 * us, a, 15 * us, 250 * us)
                .drop_window(60 * us, b, 400, 220 * us),
        }
    }
}

struct CellOutcome {
    history: KvHistory,
    plan: FaultPlan,
    scans: u64,
    scanned_items: u64,
    leases_granted: u64,
    leases_expired: u64,
}

fn run_cell(proto: Protocol, kind: PlanKind, seed: u64) -> CellOutcome {
    let sim = Sim::new(seed);
    let cluster = StoreBuilder::new(proto)
        .value_size(CAP + 8)
        .max_clients(CLIENTS + 1)
        // Fault plans can stall quorums; the deadline turns a lost op into
        // an ambiguous history entry instead of a hung worker.
        .op_deadline_ns(2 * NANOS_PER_MILLI)
        .build_cluster(&sim);
    cluster.load_keys(KEYS, |k| ttl_stamp_never(&tagged(INITIAL_TAG_BASE + k)));
    if let Some(m) = cluster.membership() {
        m.watch_until(5 * NANOS_PER_MILLI);
    }
    let plan = kind.plan(seed, cluster.fabric().num_nodes());
    cluster.fabric().apply_fault_plan(&plan);

    let rec = HistoryRecorder::new(&sim);
    for k in 0..KEYS {
        rec.set_initial(k, &tagged(INITIAL_TAG_BASE + k));
    }
    // Recorder OUTSIDE the TTL wrapper: it sees unstamped payloads, and
    // expired keys read as recorded absences.
    let ttls: Vec<_> = (0..CLIENTS)
        .map(|i| swarm_kv::TtlStore::new(&sim, cluster.client(i)))
        .collect();
    let stores: Vec<_> = ttls.iter().map(|t| rec.wrap(Rc::clone(t))).collect();

    let spec = spec();
    let cfg = ScenarioRunConfig {
        seed,
        value_cap: CAP,
        ..Default::default()
    };
    let stats = run_scenario(&sim, &stores, &spec, &cfg);

    let mut leases_granted = 0;
    let mut leases_expired = 0;
    for t in &ttls {
        for (key, at) in t.take_expired() {
            rec.note_expiry(key, at);
            leases_expired += 1;
        }
    }
    leases_granted += stats.lat(ScenarioOpClass::Insert).len() as u64;
    CellOutcome {
        history: rec.take_history(),
        plan,
        scans: stats.lat(ScenarioOpClass::Scan).len() as u64,
        scanned_items: stats.scanned_items,
        leases_granted,
        leases_expired,
    }
}

/// The headline sweep: {SWARM, DM-ABD} × {crash-restart, jitter+drop} × 4
/// seeds; every history with scans and TTL expiries interleaved into the
/// fault window must linearize.
#[test]
fn scan_and_ttl_scenarios_stay_linearizable_under_faults() {
    let seeds: Vec<u64> = (0..4u64).map(|i| 0x5CE4_A000 + i * 7919).collect();
    let mut cells = Vec::new();
    for proto in [Protocol::SafeGuess, Protocol::Abd] {
        for kind in [PlanKind::CrashRestart, PlanKind::JitterAndDrop] {
            for &seed in &seeds {
                cells.push((proto, kind, seed));
            }
        }
    }
    let results = swarm_bench::sweep(&cells, |&(p, k, s)| run_cell(p, k, s));

    let mut total_scanned = 0;
    let mut total_expired = 0;
    for ((proto, kind, seed), r) in cells.iter().zip(results) {
        assert!(
            r.scans > 0,
            "{} / {kind:?} / seed {seed}: the YCSB-E phase ran no scans",
            proto.name()
        );
        total_scanned += r.scanned_items;
        total_expired += r.leases_expired;
        assert!(
            r.leases_expired <= r.leases_granted,
            "{} / {kind:?} / seed {seed}: more expiries than leases",
            proto.name()
        );
        if let Err(e) = r.history.check() {
            panic!(
                "{} scan+TTL scenario is NOT linearizable under {kind:?}, seed {seed}: {e}\n\
                 ({} of {} ops definite, {} leases expired)\nfault plan:\n{}",
                proto.name(),
                r.history.definite_ops(),
                r.history.len(),
                r.leases_expired,
                r.plan,
            );
        }
    }
    assert!(cells.len() >= 16, "sweep shrank: {} cells", cells.len());
    assert!(total_scanned > 0, "no scan returned a single item");
    assert!(
        total_expired > 0,
        "no lease expired anywhere in the sweep — the TTL path went untested"
    );
}

/// Replay guard (the `TESTING.md` convention): the same `(protocol, plan,
/// seed)` triple reproduces the recorded history — including every scan
/// observation and expiry instant — bit for bit.
#[test]
fn scenario_chaos_cells_replay_bit_identically() {
    let a = run_cell(Protocol::SafeGuess, PlanKind::JitterAndDrop, 0x5CE4_A001);
    let b = run_cell(Protocol::SafeGuess, PlanKind::JitterAndDrop, 0x5CE4_A001);
    assert_eq!(a.plan, b.plan, "fault plan diverged across reruns");
    assert_eq!(a.history, b.history, "history diverged across reruns");
    assert_eq!(
        (a.scans, a.scanned_items, a.leases_granted, a.leases_expired),
        (b.scans, b.scanned_items, b.leases_granted, b.leases_expired),
        "counters diverged across reruns"
    );
    let c = run_cell(Protocol::SafeGuess, PlanKind::JitterAndDrop, 0x5CE4_A002);
    assert_ne!(a.history, c.history, "seed is not feeding the run");
}
