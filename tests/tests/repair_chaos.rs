//! Chaos and bit-parity for *background anti-entropy repair*: a planned
//! sharded run with repair armed must stay per-key linearizable under
//! fault windows, its repair counters (rounds, deltas, bytes) must replay
//! bit-identically whether the shards run sequentially, on OS threads, or
//! on one shared simulation — and the repair must actually matter: with it
//! off, a drop window leaves replicas divergent forever; with it on, every
//! replica pair converges.
//!
//! `SWARM_CHAOS_SEEDS=N` widens the seed sweep (default 4, the
//! acceptance floor).

use swarm_fabric::{FaultPlan, NodeId};
use swarm_kv::{
    divergent_stamp_pairs, plan_workload, run_sharded_plan, run_workload, Protocol, RepairConfig,
    RepairStrategy, ReshardEvent, RunConfig, ShardMode, ShardRunOptions, ShardSpec, ShardedRun,
    StoreBuilder,
};
use swarm_sim::{Nanos, Sim, NANOS_PER_MICRO, NANOS_PER_MILLI};
use swarm_workload::{Workload, WorkloadSpec};

const SHARDS: usize = 2;
const ROUTERS: usize = 2;
const N_KEYS: u64 = 96;
const VALUE_SIZE: usize = 64;

/// The repair agent (and an elastic family's migration driver) writes with
/// the reserved top client id, so the builder mints one more than the run
/// has routers.
fn builder(repair: Option<RepairConfig>) -> StoreBuilder {
    let b = StoreBuilder::new(Protocol::SafeGuess)
        .value_size(VALUE_SIZE)
        .max_clients(ROUTERS + 1)
        .op_deadline_ns(2 * NANOS_PER_MILLI)
        .shards(SHARDS);
    match repair {
        Some(cfg) => b.repair(cfg),
        None => b,
    }
}

fn workload() -> Workload {
    Workload::ycsb(WorkloadSpec::A, N_KEYS, VALUE_SIZE)
}

/// Seeds per scenario: 4 by default (the pinned acceptance floor),
/// `SWARM_CHAOS_SEEDS=N` for deeper local sweeps.
fn chaos_seeds() -> Vec<u64> {
    let n = swarm_kv::env_knob("SWARM_CHAOS_SEEDS", "a positive integer like 16", |n| {
        *n > 0
    })
    .unwrap_or(4u64);
    (0..n).map(|i| 0x2E5A_4D00 + i * 6007).collect()
}

/// A 300-permille drop window on one replica node of shard 1: enough loss
/// to strand stale max registers behind completed quorum writes.
fn drop_faults() -> Vec<(usize, FaultPlan)> {
    let us = NANOS_PER_MICRO;
    vec![(
        1usize,
        FaultPlan::new().drop_window(30 * us, NodeId(0), 300, 400 * us),
    )]
}

fn run(
    seed: u64,
    mode: ShardMode,
    repair: Option<RepairConfig>,
    repair_until_ns: Option<Nanos>,
    reshards: Vec<ReshardEvent>,
    faults: Vec<(usize, FaultPlan)>,
) -> ShardedRun {
    let b = builder(repair);
    let wl = workload();
    let cfg = RunConfig {
        warmup_ops: 40,
        measure_ops: 260,
        batch: 1,
        ..Default::default()
    };
    let plan = plan_workload(seed, ShardSpec::new(SHARDS), &wl, &cfg, ROUTERS);
    let opts = ShardRunOptions {
        preload_keys: Some(N_KEYS),
        faults,
        record_history: true,
        collect_results: true,
        watch_until_ns: None,
        reshards,
        repair_until_ns,
    };
    run_sharded_plan(&b, seed, &plan, &wl, &opts, mode)
}

/// Everything two runs must agree on, byte for byte — the
/// `reshard_chaos` witness set plus the per-shard repair counters.
fn assert_runs_identical(a: &ShardedRun, b: &ShardedRun, what: &str) {
    assert_eq!(a.histories(), b.histories(), "{what}: histories diverged");
    assert_eq!(
        a.per_shard_traffic(),
        b.per_shard_traffic(),
        "{what}: per-shard traffic diverged"
    );
    assert_eq!(a.results(), b.results(), "{what}: op results diverged");
    let (sa, sb) = (a.merged_stats(), b.merged_stats());
    assert_eq!(sa.measured_ops, sb.measured_ops, "{what}: measured ops");
    assert_eq!(sa.failed_ops, sb.failed_ops, "{what}: failed ops");
    for (s, (oa, ob)) in a.per_shard().iter().zip(b.per_shard()).enumerate() {
        assert_eq!(
            oa.repair, ob.repair,
            "{what}: shard {s} repair counters diverged"
        );
        assert_eq!(
            oa.reshard, ob.reshard,
            "{what}: shard {s} migration counters diverged"
        );
    }
}

fn assert_linearizable(r: &ShardedRun, what: &str) {
    for (s, h) in r.histories().into_iter().enumerate() {
        h.check()
            .unwrap_or_else(|e| panic!("{what}: shard {s} does not linearize: {e}"));
    }
}

/// Repair armed under a drop window: bit-identical across every mode and
/// strategy, linearizable, and the agent does real work on the lossy
/// shard.
#[test]
fn repair_under_drops_is_bit_identical_across_modes() {
    let until = Some(3 * NANOS_PER_MILLI);
    let mut deltas_across_seeds = 0u64;
    for seed in chaos_seeds() {
        let cfg = || Some(RepairConfig::default());
        let sequential = run(
            seed,
            ShardMode::Sequential,
            cfg(),
            until,
            Vec::new(),
            drop_faults(),
        );
        for (mode, name) in [
            (ShardMode::Threads(2), "threads=2"),
            (ShardMode::SingleSim, "single-sim"),
        ] {
            let other = run(seed, mode, cfg(), until, Vec::new(), drop_faults());
            assert_runs_identical(&sequential, &other, &format!("seed {seed}, {name}"));
        }
        assert_linearizable(&sequential, &format!("seed {seed}, repair under drops"));

        for (s, o) in sequential.per_shard().iter().enumerate() {
            let stats = o.repair.expect("repair configured on every shard");
            assert!(
                stats.rounds > 0,
                "seed {seed}: shard {s} must run repair rounds"
            );
        }
        deltas_across_seeds += sequential.per_shard()[1]
            .repair
            .expect("repair configured")
            .deltas_applied;
    }
    assert!(
        deltas_across_seeds > 0,
        "across the seed sweep the lossy shard must need at least one delta"
    );
}

/// Every strategy replays bit-identically (one seed, the three-way mode
/// cross is covered above; here the strategy axis gets the same witness).
#[test]
fn every_strategy_is_bit_identical_across_modes() {
    let until = Some(3 * NANOS_PER_MILLI);
    let seed = chaos_seeds()[0];
    for strategy in RepairStrategy::all() {
        let cfg = || Some(RepairConfig::with_strategy(strategy));
        let sequential = run(
            seed,
            ShardMode::Sequential,
            cfg(),
            until,
            Vec::new(),
            drop_faults(),
        );
        let threaded = run(
            seed,
            ShardMode::Threads(2),
            cfg(),
            until,
            Vec::new(),
            drop_faults(),
        );
        assert_runs_identical(
            &sequential,
            &threaded,
            &format!("strategy {}", strategy.name()),
        );
        assert_linearizable(&sequential, &format!("strategy {}", strategy.name()));
    }
}

/// Repair and an elastic split in the same run: window keys defer to the
/// migration, the split seals, and the whole composition — migration
/// counters and repair counters — replays bit-identically.
#[test]
fn repair_composes_with_resharding_bit_identically() {
    let until = Some(3 * NANOS_PER_MILLI);
    let events = || vec![ReshardEvent::split(1, 40 * NANOS_PER_MICRO, 500).pace_ns(500)];
    for seed in chaos_seeds().into_iter().take(2) {
        let cfg = || Some(RepairConfig::default());
        let sequential = run(
            seed,
            ShardMode::Sequential,
            cfg(),
            until,
            events(),
            drop_faults(),
        );
        for (mode, name) in [
            (ShardMode::Threads(2), "threads=2"),
            (ShardMode::SingleSim, "single-sim"),
        ] {
            let other = run(seed, mode, cfg(), until, events(), drop_faults());
            assert_runs_identical(&sequential, &other, &format!("seed {seed}, {name}"));
        }
        assert_linearizable(&sequential, &format!("seed {seed}, repair + split"));

        let stats = sequential.per_shard()[1]
            .reshard
            .expect("shard 1 ran a migration");
        assert_eq!(stats.sealed, 1, "seed {seed}: the split must seal");
        let repair = sequential.per_shard()[1]
            .repair
            .expect("repair configured on the elastic family");
        assert!(repair.rounds > 0, "seed {seed}: the family runs repair");
    }
}

/// With repair off the run is byte-identical to one built without any
/// repair config at all: configuring nothing and arming nothing are the
/// same execution (the "disabled repair changes no goldens" guarantee,
/// one level up from the bench goldens).
#[test]
fn unarmed_repair_config_changes_nothing() {
    let seed = chaos_seeds()[0];
    let plain = run(
        seed,
        ShardMode::Sequential,
        None,
        None,
        Vec::new(),
        drop_faults(),
    );
    let configured_unarmed = run(
        seed,
        ShardMode::Sequential,
        Some(RepairConfig::default()),
        None,
        Vec::new(),
        drop_faults(),
    );
    assert_eq!(plain.histories(), configured_unarmed.histories());
    assert_eq!(
        plain.per_shard_traffic(),
        configured_unarmed.per_shard_traffic()
    );
    assert_eq!(plain.results(), configured_unarmed.results());
    assert!(
        plain.per_shard()[0].repair.is_none(),
        "an unconfigured run reports no repair counters"
    );
    let unarmed = configured_unarmed.per_shard()[0]
        .repair
        .expect("configured run reports counters");
    assert_eq!(
        unarmed.rounds, 0,
        "an unarmed agent never runs a round (and thus never perturbs traffic)"
    );
}

/// The ground truth behind all of the above, on one cluster where the
/// replica state can be scanned directly: a drop window strands divergent
/// replicas; without repair they stay divergent however long the
/// simulation idles, and with repair every pair converges.
#[test]
fn divergence_persists_without_repair_and_heals_with_it() {
    let run_cell = |seed: u64, converge: bool| -> (u64, u64) {
        let sim = Sim::new(seed);
        let cluster = StoreBuilder::new(Protocol::SafeGuess)
            .value_size(VALUE_SIZE)
            .max_clients(3)
            .op_deadline_ns(2 * NANOS_PER_MILLI)
            .repair(RepairConfig::default())
            .build_cluster(&sim);
        let wl = workload();
        cluster.load_keys(N_KEYS, |k| wl.value_for(k, 0));
        cluster
            .fabric()
            .apply_fault_plan(&FaultPlan::new().drop_window(
                30 * NANOS_PER_MICRO,
                NodeId(0),
                300,
                400 * NANOS_PER_MICRO,
            ));
        let clients = vec![cluster.client(0), cluster.client(1)];
        let rc = RunConfig {
            warmup_ops: 0,
            measure_ops: 400,
            ..Default::default()
        };
        run_workload(&sim, &clients, &wl, &rc);
        let c = cluster.swarm().expect("SWARM-KV").clone();
        let before = divergent_stamp_pairs(&c);
        if converge {
            let agent = cluster.repair().expect("repair configured").clone();
            let (_, converged) = sim.block_on(async move { agent.converge().await });
            assert!(converged, "seed {seed}: repair must converge");
        } else {
            // Idle the simulation well past every deadline: nothing in the
            // foreground protocol heals a key no one writes again.
            let s2 = sim.clone();
            sim.block_on(async move { s2.sleep_ns(10 * NANOS_PER_MILLI).await });
        }
        (before, divergent_stamp_pairs(&c))
    };

    let mut stranded_anywhere = false;
    for seed in chaos_seeds().into_iter().take(2) {
        let (before_off, after_off) = run_cell(seed, false);
        assert_eq!(
            before_off, after_off,
            "seed {seed}: without repair, divergence never heals on its own"
        );
        let (before_on, after_on) = run_cell(seed, true);
        assert_eq!(
            before_on, before_off,
            "seed {seed}: both cells run the identical foreground phase"
        );
        assert_eq!(after_on, 0, "seed {seed}: repair heals every pair");
        stranded_anywhere |= before_off > 0;
    }
    assert!(
        stranded_anywhere,
        "the drop window must strand at least one stale replica across the sweep"
    );
}
