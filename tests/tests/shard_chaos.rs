//! Chaos and determinism for sharded clusters: shard *independence* (a
//! fault plan aimed at one shard must not perturb any other shard's
//! execution), cross-shard linearizability through routers under faults,
//! and bit-identical reproduction of sharded sweeps.
//!
//! The independence property leans on per-shard private RNG streams (see
//! `swarm_sim::SimRng`): all shards share one simulation, but every
//! shard's fabric jitter, drop rolls, index jitter, clocks, and caches
//! fork from `(seed, shard label)`. The workers here likewise draw their
//! op mix from forked streams, so the only channel left between shards is
//! virtual time itself — which faults do not bend.

use swarm_core::KvHistory;
use swarm_fabric::{FaultPlan, NodeId, TrafficStats};
use swarm_kv::{
    run_workload, HistoryRecorder, KvStore, Protocol, RunConfig, ShardedCluster, StoreBuilder,
};
use swarm_sim::{Sim, NANOS_PER_MICRO, NANOS_PER_MILLI};

const SHARDS: usize = 3;
const CLIENTS_PER_SHARD: usize = 2;
const OPS_PER_WORKER: u64 = 30;
const VALUE_SIZE: usize = 64;
const KEYS_PER_SHARD: usize = 8;
const INITIAL_TAG_BASE: u64 = 1 << 32;

fn tagged(tag: u64) -> Vec<u8> {
    let mut v = vec![0u8; VALUE_SIZE];
    v[..8].copy_from_slice(&tag.to_le_bytes());
    v
}

fn build(sim: &Sim, shards: usize) -> ShardedCluster {
    StoreBuilder::new(Protocol::SafeGuess)
        .value_size(VALUE_SIZE)
        .max_clients(CLIENTS_PER_SHARD * shards + 1)
        .op_deadline_ns(2 * NANOS_PER_MILLI)
        .shards(shards)
        .build_sharded(sim)
}

/// The fault plan aimed at one shard's fabric: a crash+restart plus a drop
/// window — the fault kinds that perturb timing *and* consume RNG draws on
/// the shard they hit.
fn shard_fault_plan() -> FaultPlan {
    let us = NANOS_PER_MICRO;
    FaultPlan::new()
        .crash_at(60 * us, NodeId(0))
        .restart_at(300 * us, NodeId(0))
        .drop_window(80 * us, NodeId(2), 400, 250 * us)
}

/// One sharded chaos run with per-shard pinned traffic: every worker
/// drives only keys owned by its shard, drawing ops and pauses from a
/// private forked stream. Returns each shard's recorded history and
/// traffic counters.
fn run_pinned(seed: u64, fault_shard: Option<usize>) -> Vec<(KvHistory, TrafficStats)> {
    let sim = Sim::new(seed);
    let cluster = build(&sim, SHARDS);
    let spec = cluster.spec();

    // The first KEYS_PER_SHARD keys owned by each shard, deterministically.
    let shard_keys: Vec<Vec<u64>> = (0..SHARDS)
        .map(|s| {
            (0u64..)
                .filter(|&k| spec.shard_of(k) == s)
                .take(KEYS_PER_SHARD)
                .collect()
        })
        .collect();

    let recorders: Vec<HistoryRecorder> = (0..SHARDS).map(|_| HistoryRecorder::new(&sim)).collect();
    for (s, keys) in shard_keys.iter().enumerate() {
        for (i, &k) in keys.iter().enumerate() {
            let v = tagged(INITIAL_TAG_BASE + (s * KEYS_PER_SHARD + i) as u64);
            cluster.load_key(k, &v);
            recorders[s].set_initial(k, &v);
        }
    }
    for s in 0..SHARDS {
        if let Some(m) = cluster.shard(s).membership() {
            m.watch_until(5 * NANOS_PER_MILLI);
        }
    }
    if let Some(f) = fault_shard {
        cluster
            .shard(f)
            .fabric()
            .apply_fault_plan(&shard_fault_plan());
    }

    for s in 0..SHARDS {
        for c in 0..CLIENTS_PER_SHARD {
            let store = recorders[s].wrap(cluster.shard(s).client(s * CLIENTS_PER_SHARD + c));
            let keys = shard_keys[s].clone();
            // Private stream per worker: op choices cannot shift with
            // another shard's draws.
            let rng = sim.fork_rng(0xB0B0 + (s * CLIENTS_PER_SHARD + c) as u64);
            let sim2 = sim.clone();
            let mut tag = ((s * CLIENTS_PER_SHARD + c) as u64) << 24;
            sim.spawn(async move {
                for _ in 0..OPS_PER_WORKER {
                    sim2.sleep_ns(rng.rand_range(1, 40 * NANOS_PER_MICRO)).await;
                    let key = keys[rng.rand_range(0, keys.len() as u64) as usize];
                    tag += 1;
                    match rng.rand_range(0, 100) {
                        0..=49 => {
                            let _ = store.get(key).await;
                        }
                        50..=79 => {
                            let _ = store.update(key, tagged(tag)).await;
                        }
                        80..=91 => {
                            let _ = store.insert(key, tagged(tag)).await;
                        }
                        _ => {
                            let _ = store.delete(key).await;
                        }
                    }
                }
            });
        }
    }
    sim.run();
    recorders
        .into_iter()
        .enumerate()
        .map(|(s, rec)| (rec.take_history(), cluster.shard(s).fabric().stats()))
        .collect()
}

/// The independence property: faulting shard 0 must leave shards 1 and 2
/// with *bit-identical* histories and traffic counters versus a fault-free
/// run — while visibly perturbing shard 0 itself.
#[test]
fn fault_on_one_shard_leaves_other_shards_bit_identical() {
    for seed in [11u64, 12, 13] {
        let healthy = run_pinned(seed, None);
        let faulted = run_pinned(seed, Some(0));
        assert_ne!(
            healthy[0].1, faulted[0].1,
            "seed {seed}: the fault plan must actually perturb shard 0"
        );
        for s in 1..SHARDS {
            assert_eq!(
                healthy[s].0, faulted[s].0,
                "seed {seed}: shard {s}'s history changed under a shard-0 fault"
            );
            assert_eq!(
                healthy[s].1, faulted[s].1,
                "seed {seed}: shard {s}'s traffic changed under a shard-0 fault"
            );
        }
        // And everything that survived still linearizes, fault or not.
        for (s, (h, _)) in healthy.iter().chain(faulted.iter()).enumerate() {
            h.check().unwrap_or_else(|e| {
                panic!("seed {seed}: shard history {s} does not linearize: {e}")
            });
        }
    }
}

/// Cross-shard traffic through routers stays linearizable per key while
/// fault plans play out on two different shards at once.
#[test]
fn cross_shard_router_histories_linearize_under_faults() {
    for seed in [21u64, 22] {
        let (h, stats) = run_routed(seed);
        assert_eq!(
            h.len() as u64,
            3 * OPS_PER_WORKER,
            "seed {seed}: ops lost from the routed history"
        );
        assert!(stats.messages > 0, "seed {seed}: no traffic");
        if let Err(e) = h.check() {
            panic!("seed {seed}: sharded router history is NOT linearizable: {e}");
        }
    }
}

/// One routed chaos run: 3 routers fire a mixed stream over the whole
/// keyspace while shards 0 and 2 run fault plans.
fn run_routed(seed: u64) -> (KvHistory, TrafficStats) {
    let sim = Sim::new(seed);
    let cluster = build(&sim, 4);
    let rec = HistoryRecorder::new(&sim);
    let n_keys = 16u64;
    for k in 0..n_keys {
        let v = tagged(INITIAL_TAG_BASE + k);
        cluster.load_key(k, &v);
        rec.set_initial(k, &v);
    }
    for s in 0..4 {
        if let Some(m) = cluster.shard(s).membership() {
            m.watch_until(5 * NANOS_PER_MILLI);
        }
    }
    cluster
        .shard(0)
        .fabric()
        .apply_fault_plan(&shard_fault_plan());
    cluster
        .shard(2)
        .fabric()
        .apply_fault_plan(&FaultPlan::random(seed, 4, 500 * NANOS_PER_MICRO));

    for cid in 0..3 {
        let store = rec.wrap(cluster.router(cid));
        let rng = sim.fork_rng(0xC1D0 + cid as u64);
        let sim2 = sim.clone();
        let mut tag = (cid as u64) << 24;
        sim.spawn(async move {
            for _ in 0..OPS_PER_WORKER {
                sim2.sleep_ns(rng.rand_range(1, 40 * NANOS_PER_MICRO)).await;
                let key = rng.rand_range(0, n_keys);
                tag += 1;
                match rng.rand_range(0, 100) {
                    0..=49 => {
                        let _ = store.get(key).await;
                    }
                    50..=79 => {
                        let _ = store.update(key, tagged(tag)).await;
                    }
                    80..=91 => {
                        let _ = store.insert(key, tagged(tag)).await;
                    }
                    _ => {
                        let _ = store.delete(key).await;
                    }
                }
            }
        });
    }
    sim.run();
    (rec.take_history(), cluster.stats())
}

/// Sharded chaos runs reproduce bit for bit from their seed, and the seed
/// actually feeds the execution.
#[test]
fn sharded_runs_reproduce_bit_identically_per_seed() {
    let (h1, s1) = run_routed(7);
    let (h2, s2) = run_routed(7);
    assert_eq!(h1, h2, "history diverged across reruns");
    assert_eq!(s1, s2, "traffic diverged across reruns");
    let (h3, _) = run_routed(8);
    assert_ne!(h1, h3, "the seed is not feeding the sharded run");
}

/// The independence property under the one-`Sim`-per-shard threaded
/// driver: faulting shard 0 of a planned multi-thread run must leave every
/// other shard's history and traffic *byte-identical* to the fault-free
/// run — the same contract `fault_on_one_shard_leaves_other_shards_
/// bit_identical` proves on a shared simulation, re-proven where each
/// shard lives on its own OS thread.
#[test]
fn threaded_driver_fault_on_one_shard_leaves_others_bit_identical() {
    use swarm_kv::{plan_workload, run_sharded_plan, ShardMode, ShardRunOptions, ShardSpec};

    let shards = 3;
    let run = |seed: u64, faulted: bool| {
        let b = StoreBuilder::new(Protocol::SafeGuess)
            .value_size(VALUE_SIZE)
            .max_clients(CLIENTS_PER_SHARD)
            .op_deadline_ns(2 * NANOS_PER_MILLI)
            .shards(shards);
        let wl = swarm_workload::Workload::ycsb(swarm_workload::WorkloadSpec::A, 24, VALUE_SIZE);
        let cfg = RunConfig {
            warmup_ops: 0,
            measure_ops: 180,
            ..Default::default()
        };
        let plan = plan_workload(seed, ShardSpec::new(shards), &wl, &cfg, CLIENTS_PER_SHARD);
        let opts = ShardRunOptions {
            preload_keys: Some(24),
            faults: if faulted {
                vec![(0, shard_fault_plan())]
            } else {
                Vec::new()
            },
            record_history: true,
            watch_until_ns: Some(5 * NANOS_PER_MILLI),
            ..Default::default()
        };
        run_sharded_plan(&b, seed, &plan, &wl, &opts, ShardMode::Threads(shards))
    };
    for seed in [71u64, 72] {
        let healthy = run(seed, false);
        let faulted = run(seed, true);
        assert_ne!(
            healthy.per_shard_traffic()[0],
            faulted.per_shard_traffic()[0],
            "seed {seed}: the fault plan must actually perturb shard 0"
        );
        for s in 1..shards {
            assert_eq!(
                healthy.histories()[s],
                faulted.histories()[s],
                "seed {seed}: shard {s}'s history changed under a shard-0 fault"
            );
            assert_eq!(
                healthy.per_shard_traffic()[s],
                faulted.per_shard_traffic()[s],
                "seed {seed}: shard {s}'s traffic changed under a shard-0 fault"
            );
        }
        for (s, h) in faulted.histories().into_iter().enumerate() {
            h.check().unwrap_or_else(|e| {
                panic!("seed {seed}: faulted shard history {s} does not linearize: {e}")
            });
        }
    }
}

/// A multi-seed sharded sweep — the bench_shards shape in miniature — is
/// bit-identical cell for cell between sequential and threaded execution,
/// and across reruns.
#[test]
fn sharded_sweep_is_thread_count_invariant_and_rerunnable() {
    let cells: Vec<(u64, usize)> = [31u64, 32, 33]
        .into_iter()
        .flat_map(|seed| [(seed, 1usize), (seed, 4)])
        .collect();
    let run = |&(seed, shards): &(u64, usize)| {
        let sim = Sim::new(seed);
        let cluster = build(&sim, shards);
        cluster.load_keys(64, |k| tagged(INITIAL_TAG_BASE + k));
        let routers = cluster.routers(2);
        let stats = run_workload(
            &sim,
            &routers,
            &swarm_workload::Workload::ycsb(swarm_workload::WorkloadSpec::B, 64, VALUE_SIZE),
            &RunConfig {
                warmup_ops: 50,
                measure_ops: 400,
                ..Default::default()
            },
        );
        let routed: Vec<u64> = routers.iter().flat_map(|r| r.routed_per_shard()).collect();
        (
            stats.measured_ops,
            stats.throughput_ops().to_bits(),
            cluster.stats(),
            routed,
        )
    };
    let sequential = swarm_bench::sweep_on(1, &cells, run);
    let threaded = swarm_bench::sweep_on(4, &cells, run);
    let rerun = swarm_bench::sweep_on(1, &cells, run);
    for (((seed, shards), s), (t, r)) in cells
        .iter()
        .zip(&sequential)
        .zip(threaded.iter().zip(&rerun))
    {
        assert_eq!(s, t, "seed {seed}/{shards} shards: threaded diverged");
        assert_eq!(s, r, "seed {seed}/{shards} shards: rerun diverged");
    }
}
