//! Deterministic chaos suite: seeded fault plans × all four protocols,
//! every surviving history checked against the multi-key linearizability
//! spec (conf_sosp_MuratBXZAG24 Appendix C; §7.7 failure handling).
//!
//! Every run is pinned by a `(workload seed, fault plan)` pair; a failure
//! message prints both, and re-running with the same pair reproduces the
//! execution bit for bit (see `TESTING.md`). `SWARM_CHAOS_SEEDS=N` widens
//! the sweep to `N` seeds per (protocol, plan) cell — CI uses the quick
//! default.

use std::cell::Cell;
use std::rc::Rc;

use swarm_core::KvHistory;
use swarm_fabric::{FaultPlan, NodeId, TrafficStats};
use swarm_kv::{
    run_workload, HedgeConfig, HistoryRecorder, KvStore, Protocol, RunConfig, StoreBuilder,
    StoreCluster,
};
use swarm_sim::{Sim, NANOS_PER_MICRO, NANOS_PER_MILLI};
use swarm_workload::{Workload, WorkloadSpec, Zipfian};

const KEYS: u64 = 12;
const VALUE_SIZE: usize = 64;
const CLIENTS: usize = 3;
const OPS_PER_CLIENT: u64 = 24;
/// Tag space for bulk-loaded values, disjoint from the tags workers write.
const INITIAL_TAG_BASE: u64 = 1 << 32;

/// A 64 B value whose first 8 bytes carry the checker tag.
fn tagged(tag: u64) -> Vec<u8> {
    let mut v = vec![0u8; VALUE_SIZE];
    v[..8].copy_from_slice(&tag.to_le_bytes());
    v
}

/// Seeds per (protocol, plan) cell: 2 by default (the pinned CI quick set),
/// `SWARM_CHAOS_SEEDS=N` for deeper local sweeps. An unparsable value is
/// ignored with a one-time warning (the shared `swarm_kv::env_knob`
/// convention) — a silently shrunken sweep would report clean runs that
/// never executed.
fn chaos_seeds() -> Vec<u64> {
    let n = swarm_kv::env_knob("SWARM_CHAOS_SEEDS", "a positive integer like 400", |n| {
        *n > 0
    })
    .unwrap_or(2u64);
    (0..n).map(|i| 0xC4A0_5000 + i * 7919).collect()
}

/// The swept fault plans (the acceptance floor is 4; `Random` adds seeded
/// grab-bag schedules on top).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanKind {
    /// One node dies mid-run and never comes back.
    CrashOne,
    /// A node dies and restarts (memory intact) while traffic continues.
    CrashRestart,
    /// A switch partition cuts a node off — silence without lease expiry —
    /// then heals.
    Partition,
    /// A latency spike on one node plus a 40% message-drop window on
    /// another: the protocols' widen/retry machinery under stress.
    JitterAndDrop,
    /// A seeded pseudo-random mixture of all of the above.
    Random,
}

impl PlanKind {
    fn all() -> [PlanKind; 5] {
        [
            PlanKind::CrashOne,
            PlanKind::CrashRestart,
            PlanKind::Partition,
            PlanKind::JitterAndDrop,
            PlanKind::Random,
        ]
    }

    /// The concrete schedule for this kind under `seed`, over `nodes`
    /// memory nodes. Victim nodes are seed-rotated so sweeps hit different
    /// replica sets.
    fn plan(self, seed: u64, nodes: usize) -> FaultPlan {
        let us = NANOS_PER_MICRO;
        let a = NodeId(seed as usize % nodes);
        let b = NodeId((seed as usize + 1) % nodes);
        match self {
            PlanKind::CrashOne => FaultPlan::new().crash_at(80 * us, a),
            PlanKind::CrashRestart => FaultPlan::new()
                .crash_at(60 * us, a)
                .restart_at(260 * us, a),
            PlanKind::Partition => FaultPlan::new().partition_between(70 * us, 280 * us, a),
            PlanKind::JitterAndDrop => FaultPlan::new()
                .delay_spike(40 * us, a, 15 * us, 250 * us)
                .drop_window(60 * us, b, 400, 220 * us),
            PlanKind::Random => FaultPlan::random(seed, nodes, 500 * us),
        }
    }
}

/// The hedge config for chaos runs: `min_samples` drops to 2 so the
/// per-node RTT trackers form estimates — and hedges actually arm — within
/// a 72-op run; everything else stays at the production defaults.
fn chaos_hedge() -> HedgeConfig {
    HedgeConfig {
        min_samples: 2,
        ..HedgeConfig::on()
    }
}

fn build(proto: Protocol, sim: &Sim, hedge: Option<HedgeConfig>) -> StoreCluster {
    let mut b = StoreBuilder::new(proto)
        .value_size(VALUE_SIZE)
        .max_clients(CLIENTS + 1)
        // Chaos plans can make quorums unreachable (e.g. RAW's single
        // replica crashing); the deadline keeps every worker live and turns
        // the lost op into an *ambiguous* history entry.
        .op_deadline_ns(2 * NANOS_PER_MILLI);
    if let Some(cfg) = hedge {
        b = b.hedge(cfg);
    }
    let cluster = b.build_cluster(sim);
    cluster.load_keys(KEYS, |k| tagged(INITIAL_TAG_BASE + k));
    cluster
}

/// One chaos run: `CLIENTS` workers fire a mixed Get/Update/Insert/Delete
/// stream at a small keyspace while the fault plan plays out; returns the
/// recorded history and the fabric traffic counters.
fn run_chaos(proto: Protocol, kind: PlanKind, seed: u64) -> (KvHistory, TrafficStats, FaultPlan) {
    run_chaos_with(proto, kind, seed, None)
}

/// [`run_chaos`] with an explicit hedge configuration (`None` = the knob
/// is never touched, the pre-hedging build path).
fn run_chaos_with(
    proto: Protocol,
    kind: PlanKind,
    seed: u64,
    hedge: Option<HedgeConfig>,
) -> (KvHistory, TrafficStats, FaultPlan) {
    let sim = Sim::new(seed);
    let cluster = build(proto, &sim, hedge);
    let rec = HistoryRecorder::new(&sim);
    for k in 0..KEYS {
        rec.set_initial(k, &tagged(INITIAL_TAG_BASE + k));
    }
    if let Some(m) = cluster.membership() {
        m.watch_until(5 * NANOS_PER_MILLI);
    }
    let plan = kind.plan(seed, cluster.fabric().num_nodes());
    cluster.fabric().apply_fault_plan(&plan);

    // Deletes and re-inserts are only coherent on the tombstone-backed
    // protocols: SWARM and DM-ABD propagate deletion through the replicas
    // themselves (§5.3.2), so a stale location cache still observes it. RAW
    // and (our model of) FUSEE have no tombstones — a deleted key's old
    // bytes stay live under other clients' cached locations — matching the
    // paper, which evaluates those baselines on preloaded keyspaces only.
    let full_mix = matches!(proto, Protocol::SafeGuess | Protocol::Abd);

    // Unique write tags across all clients (so the checker can tell every
    // write apart).
    let tag = Rc::new(Cell::new(0u64));
    for cid in 0..CLIENTS {
        let store = rec.wrap(cluster.client(cid));
        let sim2 = sim.clone();
        let tag = Rc::clone(&tag);
        sim.spawn(async move {
            for _ in 0..OPS_PER_CLIENT {
                sim2.sleep_ns(sim2.rand_range(1, 40 * NANOS_PER_MICRO))
                    .await;
                let key = sim2.rand_range(0, KEYS);
                let t = tag.get() + 1;
                tag.set(t);
                // Results are intentionally not unwrapped: under faults,
                // errors (and their absence observations) are part of the
                // history being checked.
                match sim2.rand_range(0, 100) {
                    0..=49 => {
                        let _ = store.get(key).await;
                    }
                    50..=79 => {
                        let _ = store.update(key, tagged(t)).await;
                    }
                    80..=91 if full_mix => {
                        let _ = store.insert(key, tagged(t)).await;
                    }
                    _ if full_mix => {
                        let _ = store.delete(key).await;
                    }
                    _ => {
                        let _ = store.get(key).await;
                    }
                }
            }
        });
    }
    sim.run();
    (rec.take_history(), cluster.fabric().stats(), plan)
}

/// The headline sweep: seeds × fault plans × all four protocols; every
/// surviving history must linearize. Cells are independent seeded
/// simulations, so they run on `SWARM_BENCH_THREADS` worker threads through
/// the bench sweep driver and are asserted in deterministic cell order.
#[test]
fn all_protocols_stay_linearizable_under_every_fault_plan() {
    let mut cells = Vec::new();
    for proto in Protocol::all() {
        for kind in PlanKind::all() {
            for seed in chaos_seeds() {
                cells.push((proto, kind, seed));
            }
        }
    }
    let results = swarm_bench::sweep(&cells, |&(proto, kind, seed)| run_chaos(proto, kind, seed));
    for ((proto, kind, seed), (h, stats, plan)) in cells.iter().zip(results) {
        assert_eq!(
            h.len() as u64,
            CLIENTS as u64 * OPS_PER_CLIENT,
            "{} / {kind:?} / seed {seed}: ops lost from the history",
            proto.name()
        );
        assert!(
            stats.messages > 0,
            "{} / {kind:?} / seed {seed}: no traffic",
            proto.name()
        );
        if let Err(e) = h.check() {
            panic!(
                "{} is NOT linearizable under {kind:?}, seed {seed}: {e}\n\
                 ({} of {} ops completed unambiguously)\nfault plan:\n{}",
                proto.name(),
                h.definite_ops(),
                h.len(),
                plan,
            );
        }
    }
    // 4 protocols x 5 plans x >=2 seeds.
    assert!(cells.len() >= 40, "sweep shrank: {} cells", cells.len());
}

/// The threaded sweep must be invisible in the results: running the same
/// chaos cells on several worker threads yields bit-identical histories,
/// traffic counters, and fault plans, cell for cell, as the sequential run.
#[test]
fn threaded_chaos_sweep_matches_sequential_cell_for_cell() {
    let cells: Vec<_> = Protocol::all()
        .into_iter()
        .flat_map(|p| [(p, PlanKind::Random, 5u64), (p, PlanKind::JitterAndDrop, 6)])
        .collect();
    let run = |&(proto, kind, seed): &(Protocol, PlanKind, u64)| run_chaos(proto, kind, seed);
    let sequential = swarm_bench::sweep_on(1, &cells, run);
    let threaded = swarm_bench::sweep_on(4, &cells, run);
    for (((proto, kind, seed), s), t) in cells.iter().zip(&sequential).zip(&threaded) {
        assert_eq!(
            s,
            t,
            "{} / {kind:?} / seed {seed}: threaded sweep diverged from sequential",
            proto.name()
        );
    }
}

/// Determinism guard for the whole harness: the same `(workload seed, fault
/// plan)` pair must reproduce the history and the global traffic counters
/// bit for bit, and a different seed must actually change the execution.
#[test]
fn same_seed_reproduces_bit_identical_histories_and_traffic() {
    for proto in Protocol::all() {
        let (h1, s1, p1) = run_chaos(proto, PlanKind::Random, 7);
        let (h2, s2, p2) = run_chaos(proto, PlanKind::Random, 7);
        assert_eq!(p1, p2, "{}: plan diverged across reruns", proto.name());
        assert_eq!(h1, h2, "{}: history diverged across reruns", proto.name());
        assert_eq!(s1, s2, "{}: traffic diverged across reruns", proto.name());
        let (h3, _, _) = run_chaos(proto, PlanKind::Random, 8);
        assert_ne!(h1, h3, "{}: seed is not feeding the run", proto.name());
    }
}

/// The hedged sweep: all four protocols with hedging armed aggressively
/// (`min_samples = 2`) under every fault plan × 4 seeds. Every surviving
/// history must still linearize — which also proves duplicate delivery
/// never double-applies, since a double-applied update or a resurrected
/// delete would surface as a read observing an impossible value — and the
/// hedge budget must balance exactly: `fired == won + discarded`, even
/// when op deadlines cancel hedged ops mid-flight (the `HedgeTicket`
/// drop-settles).
#[test]
fn hedged_runs_stay_linearizable_under_every_fault_plan() {
    let seeds: Vec<u64> = (0..4u64).map(|i| 0xC4A0_6000 + i * 7919).collect();
    let mut cells = Vec::new();
    for proto in Protocol::all() {
        for kind in PlanKind::all() {
            for &seed in &seeds {
                cells.push((proto, kind, seed));
            }
        }
    }
    let results = swarm_bench::sweep(&cells, |&(proto, kind, seed)| {
        run_chaos_with(proto, kind, seed, Some(chaos_hedge()))
    });
    let mut fired_total = 0u64;
    for ((proto, kind, seed), (h, stats, plan)) in cells.iter().zip(results) {
        assert_eq!(
            h.len() as u64,
            CLIENTS as u64 * OPS_PER_CLIENT,
            "{} / {kind:?} / seed {seed}: ops lost from the hedged history",
            proto.name()
        );
        assert_eq!(
            stats.hedges_fired,
            stats.hedges_won + stats.duplicates_discarded,
            "{} / {kind:?} / seed {seed}: hedge budget leaked \
             (fired != won + discarded)",
            proto.name()
        );
        fired_total += stats.hedges_fired;
        if let Err(e) = h.check() {
            panic!(
                "{} hedged is NOT linearizable under {kind:?}, seed {seed}: {e}\n\
                 ({} of {} ops completed unambiguously)\nfault plan:\n{}",
                proto.name(),
                h.definite_ops(),
                h.len(),
                plan,
            );
        }
    }
    // 4 protocols x 5 plans x 4 seeds, and the sweep must actually hedge.
    assert!(cells.len() >= 80, "sweep shrank: {} cells", cells.len());
    assert!(
        fired_total > 0,
        "no hedge ever fired across the hedged sweep"
    );
}

/// Bit-parity of the off switch and reproducibility of the on switch:
/// building with `HedgeConfig::disabled()` is byte-identical (history,
/// traffic counters, fault plan) to never touching the hedge knob at all,
/// and hedged runs reproduce bit-for-bit under the same seed.
#[test]
fn disabled_hedging_is_bit_identical_and_hedged_runs_reproduce() {
    for proto in Protocol::all() {
        for kind in [PlanKind::JitterAndDrop, PlanKind::Random] {
            let base = run_chaos_with(proto, kind, 11, None);
            let off = run_chaos_with(proto, kind, 11, Some(HedgeConfig::disabled()));
            assert_eq!(
                base,
                off,
                "{} / {kind:?}: HedgeConfig::disabled() perturbed the run",
                proto.name()
            );
            let on1 = run_chaos_with(proto, kind, 11, Some(chaos_hedge()));
            let on2 = run_chaos_with(proto, kind, 11, Some(chaos_hedge()));
            assert_eq!(
                on1,
                on2,
                "{} / {kind:?}: hedged run diverged across reruns",
                proto.name()
            );
        }
    }
}

/// A minority crash must not cost the replicated protocols a single
/// operation: every op completes unambiguously (availability, §7.7).
#[test]
fn replicated_protocols_lose_nothing_to_a_minority_crash() {
    for proto in [Protocol::SafeGuess, Protocol::Abd] {
        for seed in chaos_seeds() {
            let (h, _, _) = run_chaos(proto, PlanKind::CrashOne, seed);
            assert_eq!(
                h.definite_ops(),
                h.len(),
                "{} / seed {seed}: ops timed out despite a live quorum",
                proto.name()
            );
        }
    }
}

/// The runner hook: any YCSB workload emits a checkable history when its
/// stores ride through a `HistoryRecorder`, here with a crash+restart plan
/// underneath the measured run.
#[test]
fn runner_workloads_emit_checkable_histories_under_chaos() {
    let n_keys = 512u64;
    let sim = Sim::new(0xBEEF);
    let cluster = StoreBuilder::new(Protocol::SafeGuess)
        .value_size(VALUE_SIZE)
        .op_deadline_ns(2 * NANOS_PER_MILLI)
        .build_cluster(&sim);
    let rec = HistoryRecorder::new(&sim);
    cluster.load_keys(n_keys, |k| {
        let v = tagged(INITIAL_TAG_BASE + k);
        rec.set_initial(k, &v);
        v
    });
    cluster
        .membership()
        .unwrap()
        .watch_until(20 * NANOS_PER_MILLI);
    cluster
        .fabric()
        .apply_fault_plan(&PlanKind::CrashRestart.plan(1, cluster.fabric().num_nodes()));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|cid| rec.wrap(cluster.client(cid)))
        .collect();
    // A near-uniform key distribution keeps every per-key subhistory well
    // under the checker's 128-op bound.
    let workload = Workload {
        spec: WorkloadSpec::A,
        keys: Zipfian::new(n_keys, 0.2, true),
        value_size: VALUE_SIZE,
    };
    let stats = run_workload(
        &sim,
        &clients,
        &workload,
        &RunConfig {
            warmup_ops: 0,
            measure_ops: 1_200,
            ..Default::default()
        },
    );
    assert_eq!(stats.measured_ops, 1_200);
    let h = rec.take_history();
    assert!(h.len() >= 1_200, "runner ops missing from the history");
    h.check()
        .expect("YCSB-A over SWARM-KV with crash+restart must linearize");
}

/// The checker is not a rubber stamp: corrupting a recorded history (a read
/// that observed a value nobody wrote) must fail the check.
#[test]
fn checker_rejects_a_corrupted_chaos_history() {
    let (h, _, _) = run_chaos(Protocol::SafeGuess, PlanKind::CrashRestart, 3);
    h.check().expect("the genuine history linearizes");
    let mut bad = h.clone();
    let end = bad.ops().iter().filter_map(|o| o.ret).max().unwrap();
    bad.push(0, end + 1, end + 2, swarm_core::KvOpKind::Get(Some(0xDEAD)));
    assert!(
        bad.check().is_err(),
        "a phantom read of an unwritten value must be rejected"
    );
}
