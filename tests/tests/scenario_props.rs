//! Property tests for the scenario engine: op-stream purity (the
//! determinism contract `bench_scenarios` reports rely on) and the
//! YCSB-E scan semantics (a scan is observationally equivalent to a
//! sequential per-key get sweep when nothing runs concurrently).

use proptest::prelude::*;

use swarm_kv::{KvStore, Protocol, StoreBuilder};
use swarm_sim::Sim;
use swarm_workload::{
    scenario_value, Phase, ScenarioMix, ScenarioOp, ScenarioSpec, TtlSpec, ValueSizeDist,
};

/// An arbitrary mix: either one of the six YCSB letters or a random
/// six-way percentage split (five sorted cuts of `[0, 100)` make six
/// buckets summing to exactly 100).
fn mix_strategy() -> impl Strategy<Value = ScenarioMix> {
    prop_oneof![
        (0usize..6).prop_map(|i| ScenarioMix::ycsb_all()[i].1),
        (0u64..100, 0u64..100, 0u64..100, 0u64..100, 0u64..100).prop_map(|(a, b, c, d, e)| {
            let mut cuts = [a, b, c, d, e];
            cuts.sort_unstable();
            ScenarioMix {
                get_pct: cuts[0],
                update_pct: cuts[1] - cuts[0],
                insert_pct: cuts[2] - cuts[1],
                delete_pct: cuts[3] - cuts[2],
                scan_pct: cuts[4] - cuts[3],
                rmw_pct: 100 - cuts[4],
            }
        }),
    ]
}

fn values_strategy() -> impl Strategy<Value = ValueSizeDist> {
    prop_oneof![
        (8usize..256).prop_map(ValueSizeDist::Fixed),
        (8usize..64, 64usize..4096, 0u64..=100).prop_map(|(small, large, large_pct)| {
            ValueSizeDist::Bimodal {
                small,
                large,
                large_pct,
            }
        }),
    ]
}

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        2u64..512,
        proptest::collection::vec((1usize..120, mix_strategy(), 0u64..99, 0u64..1024), 1..4),
        values_strategy(),
        proptest::option::of((1u64..=100, 1u64..1_000_000, 1u64..64)),
        1usize..32,
    )
        .prop_map(|(n_keys, phases, values, ttl, scan_max_len)| {
            let mut spec = ScenarioSpec::new("prop", n_keys)
                .values(values)
                .scan_max_len(scan_max_len);
            for (ops, mix, theta_pct, rotation) in phases {
                spec = spec.phase(
                    Phase::new(ops, mix)
                        .theta(theta_pct as f64 / 100.0)
                        .rotate(rotation),
                );
            }
            if let Some((insert_pct, ttl_ns, ttl_keys)) = ttl {
                spec = spec.ttl(TtlSpec {
                    insert_pct,
                    ttl_ns,
                    ttl_keys,
                });
            }
            spec
        })
}

proptest! {
    /// Stream purity: `(seed, spec)` regenerates the byte-identical op
    /// vector, the lazy stream agrees with the materialized one, and every
    /// emitted op respects the spec's bounds (keys inside the keyspace +
    /// TTL tail, sizes drawable from the distribution, scan limits within
    /// `scan_max_len`).
    #[test]
    fn scenario_streams_are_pure_and_in_bounds(spec in spec_strategy(), seed in any::<u64>()) {
        let ops = spec.ops(seed);
        prop_assert_eq!(&ops, &spec.ops(seed), "regeneration must be bit-identical");
        let lazy: Vec<_> = spec.stream(seed).collect();
        prop_assert_eq!(&ops, &lazy, "lazy stream must equal the materialized vector");
        prop_assert_eq!(ops.len(), spec.total_ops());

        let max = spec.values.max_size();
        for op in &ops {
            prop_assert!(op.key() < spec.total_keys(), "key escapes the keyspace");
            match *op {
                ScenarioOp::Update { size, .. }
                | ScenarioOp::Insert { size, .. }
                | ScenarioOp::Rmw { size, .. } => prop_assert!(size <= max),
                ScenarioOp::Scan { limit, .. } => {
                    prop_assert!(limit >= 1 && limit <= spec.scan_max_len)
                }
                _ => {}
            }
        }
        // A different seed must actually perturb a non-trivial stream.
        if ops.len() >= 16 {
            prop_assert_ne!(&ops, &spec.ops(seed.wrapping_add(1)));
        }
    }

    /// Write versions are unique across the whole stream (they are the
    /// stream index), so every write tag `key * GOLDEN + version` is
    /// distinguishable to the linearizability checker.
    #[test]
    fn scenario_write_versions_never_repeat(spec in spec_strategy(), seed in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for op in spec.ops(seed) {
            let v = match op {
                ScenarioOp::Update { version, .. }
                | ScenarioOp::Insert { version, .. }
                | ScenarioOp::Rmw { version, .. } => version,
                _ => continue,
            };
            prop_assert!(seen.insert(v), "a write version repeated");
        }
    }
}

const KEYS: u64 = 24;

/// The equivalence oracle: every `(start, limit)` probe's scan must return
/// exactly what a sequential per-key get sweep over the same ordered range
/// observes — same keys, same order, same bytes.
async fn assert_scan_matches_gets<S: KvStore>(store: &S, label: &str) {
    for start in [0u64, 1, 7, KEYS - 3, KEYS + 5] {
        for limit in [1usize, 4, 16] {
            let scanned = store
                .scan(start, limit)
                .await
                .unwrap_or_else(|e| panic!("{label}: scan({start}, {limit}) failed: {e:?}"));
            let mut expect = Vec::new();
            for k in start..KEYS {
                if expect.len() == limit {
                    break;
                }
                let v = store
                    .get(k)
                    .await
                    .expect("fault-free get")
                    .unwrap_or_else(|| panic!("{label}: key {k} must be present"));
                expect.push((k, v));
            }
            assert_eq!(
                scanned, expect,
                "{label}: scan({start}, {limit}) diverged from the get sweep"
            );
        }
    }
}

/// YCSB-E semantics on all four protocols, unsharded and through the
/// 4-shard router (whose scans fan out to every shard and reassemble in
/// key order).
#[test]
fn scan_equals_sequential_get_sweep_on_all_protocols() {
    for proto in Protocol::all() {
        for shards in [1usize, 4] {
            let sim = Sim::new(0x5CA0 + shards as u64);
            let builder = StoreBuilder::new(proto).value_size(64).max_clients(2);
            let label = format!("{} / {shards} shard(s)", proto.name());
            if shards == 1 {
                let cluster = builder.build_cluster(&sim);
                cluster.load_keys(KEYS, |k| scenario_value(k, 0, 64));
                let client = cluster.client(0);
                sim.block_on(async move { assert_scan_matches_gets(&*client, &label).await });
            } else {
                let cluster = builder.shards(shards).build_sharded(&sim);
                cluster.load_keys(KEYS, |k| scenario_value(k, 0, 64));
                let router = cluster.router(0);
                sim.block_on(async move { assert_scan_matches_gets(&*router, &label).await });
            }
        }
    }
}

/// The scan view tracks mutations: inserted keys appear (including past
/// the preloaded range), deleted keys vanish, updated bytes are the fresh
/// ones — on the tombstone-backed protocols, where deletes are coherent.
#[test]
fn scan_view_tracks_mutations() {
    for proto in [Protocol::SafeGuess, Protocol::Abd] {
        let sim = Sim::new(0x5CA7);
        let cluster = StoreBuilder::new(proto)
            .value_size(64)
            .max_clients(2)
            .build_cluster(&sim);
        cluster.load_keys(4, |k| scenario_value(k, 0, 64));
        let client = cluster.client(0);
        let name = proto.name();
        sim.block_on(async move {
            client.delete(1).await.expect("delete");
            client
                .update(2, scenario_value(2, 100, 64))
                .await
                .expect("update");
            client
                .insert(9, scenario_value(9, 101, 64))
                .await
                .expect("insert");
            let items = client.scan(0, 16).await.expect("scan");
            let keys: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
            assert_eq!(keys, vec![0, 2, 3, 9], "{name}: scan view after mutations");
            assert_eq!(
                *items[1].1,
                scenario_value(2, 100, 64),
                "{name}: fresh bytes"
            );
        });
    }
}
