//! Chaos and bit-parity for *online resharding*: a planned sharded run
//! with mid-run migration events (split, destination-crash abort, rebuild
//! after a permanent node death) must stay per-key linearizable under
//! node crashes, and the whole migration — epochs, seals, bounces, copied
//! keys, every op's invoke/response times — must replay bit-identically
//! whether the shards run sequentially, on OS threads, or on one shared
//! simulation.
//!
//! `SWARM_CHAOS_SEEDS=N` widens the seed sweep (default 4, the
//! acceptance floor).

use swarm_fabric::{FaultPlan, NodeId};
use swarm_kv::{
    plan_workload, run_sharded_plan, Protocol, ReshardEvent, RunConfig, ShardMode, ShardRunOptions,
    ShardSpec, ShardedRun, StoreBuilder,
};
use swarm_sim::{NANOS_PER_MICRO, NANOS_PER_MILLI};
use swarm_workload::{Workload, WorkloadSpec};

const SHARDS: usize = 2;
const ROUTERS: usize = 2;
const N_KEYS: u64 = 96;
const VALUE_SIZE: usize = 64;

/// The elastic driver reserves the top client id for its migration task,
/// so the builder must mint one more client than the run has routers.
fn builder() -> StoreBuilder {
    StoreBuilder::new(Protocol::SafeGuess)
        .value_size(VALUE_SIZE)
        .max_clients(ROUTERS + 1)
        .op_deadline_ns(2 * NANOS_PER_MILLI)
        .shards(SHARDS)
}

fn workload() -> Workload {
    Workload::ycsb(WorkloadSpec::A, N_KEYS, VALUE_SIZE)
}

/// Seeds per scenario: 4 by default (the pinned acceptance floor),
/// `SWARM_CHAOS_SEEDS=N` for deeper local sweeps.
fn chaos_seeds() -> Vec<u64> {
    let n = swarm_kv::env_knob("SWARM_CHAOS_SEEDS", "a positive integer like 16", |n| {
        *n > 0
    })
    .unwrap_or(4u64);
    (0..n).map(|i| 0x2E5A_4D00 + i * 6007).collect()
}

fn run(
    seed: u64,
    mode: ShardMode,
    reshards: Vec<ReshardEvent>,
    faults: Vec<(usize, FaultPlan)>,
) -> ShardedRun {
    let b = builder();
    let wl = workload();
    let cfg = RunConfig {
        warmup_ops: 40,
        measure_ops: 260,
        batch: 1,
        ..Default::default()
    };
    let plan = plan_workload(seed, ShardSpec::new(SHARDS), &wl, &cfg, ROUTERS);
    let opts = ShardRunOptions {
        preload_keys: Some(N_KEYS),
        faults,
        record_history: true,
        collect_results: true,
        watch_until_ns: Some(20 * NANOS_PER_MILLI),
        reshards,
        repair_until_ns: None,
    };
    run_sharded_plan(&b, seed, &plan, &wl, &opts, mode)
}

/// Everything two runs must agree on, byte for byte — the
/// `shard_parallel` witness set plus the per-shard migration counters.
fn assert_runs_identical(a: &ShardedRun, b: &ShardedRun, what: &str) {
    assert_eq!(a.histories(), b.histories(), "{what}: histories diverged");
    assert_eq!(
        a.per_shard_traffic(),
        b.per_shard_traffic(),
        "{what}: per-shard traffic diverged"
    );
    assert_eq!(
        a.total_traffic(),
        b.total_traffic(),
        "{what}: aggregate traffic diverged"
    );
    assert_eq!(a.results(), b.results(), "{what}: op results diverged");
    let (sa, sb) = (a.merged_stats(), b.merged_stats());
    assert_eq!(sa.measured_ops, sb.measured_ops, "{what}: measured ops");
    assert_eq!(sa.failed_ops, sb.failed_ops, "{what}: failed ops");
    assert_eq!(
        (sa.start_ns, sa.end_ns),
        (sb.start_ns, sb.end_ns),
        "{what}: measurement window"
    );
    for (s, (oa, ob)) in a.per_shard().iter().zip(b.per_shard()).enumerate() {
        assert_eq!(
            oa.reshard, ob.reshard,
            "{what}: shard {s} migration counters diverged"
        );
        assert_eq!(
            (oa.stats.start_ns, oa.stats.end_ns),
            (ob.stats.start_ns, ob.stats.end_ns),
            "{what}: shard {s} window"
        );
    }
}

fn assert_linearizable(r: &ShardedRun, what: &str) {
    for (s, h) in r.histories().into_iter().enumerate() {
        h.check()
            .unwrap_or_else(|e| panic!("{what}: shard {s} does not linearize: {e}"));
    }
}

/// A split of shard 1's upper half, landing while the measured workload
/// is in full flight.
fn split_event() -> ReshardEvent {
    ReshardEvent::split(1, 40 * NANOS_PER_MICRO, 500).pace_ns(500)
}

/// Healthy split mid-run: the migration seals, advances the epoch, moves
/// keys — and the entire run, migration included, is bit-identical in
/// every [`ShardMode`].
#[test]
fn split_mid_run_is_bit_identical_across_modes() {
    for (i, seed) in chaos_seeds().into_iter().enumerate() {
        let sequential = run(seed, ShardMode::Sequential, vec![split_event()], Vec::new());
        for (mode, name) in [
            (ShardMode::Threads(2), "threads=2"),
            (ShardMode::SingleSim, "single-sim"),
        ] {
            let other = run(seed, mode, vec![split_event()], Vec::new());
            assert_runs_identical(&sequential, &other, &format!("seed {seed}, {name}"));
        }
        assert_linearizable(&sequential, &format!("seed {seed}, healthy split"));

        let stats = sequential.per_shard()[1]
            .reshard
            .expect("shard 1 ran with a migration event");
        assert_eq!(stats.sealed, 1, "seed {seed}: the split must seal");
        assert_eq!(
            stats.aborted, 0,
            "seed {seed}: no aborts on a healthy split"
        );
        assert_eq!(stats.epoch, 1, "seed {seed}: seal bumps the routing epoch");
        assert_eq!(stats.groups, 2, "seed {seed}: the split adds one group");
        assert!(
            stats.keys_copied > 0,
            "seed {seed}: the split must move keys"
        );
        assert!(
            sequential.per_shard()[0].reshard.is_none(),
            "seed {seed}: shard 0 had no events and stays a plain cluster"
        );

        if i == 0 {
            // The seed must actually feed the execution.
            let other_seed = run(
                seed + 101,
                ShardMode::Sequential,
                vec![split_event()],
                Vec::new(),
            );
            assert_ne!(
                sequential.histories(),
                other_seed.histories(),
                "distinct seeds must diverge"
            );
        }
    }
}

/// A node of the *source* group crashes mid-window and restarts. The
/// migration driver retries through it, foreground ops time out and
/// resolve as ambiguous — and every mode still agrees bit for bit, every
/// per-key history still linearizes.
#[test]
fn source_crash_mid_migration_stays_linearizable() {
    let us = NANOS_PER_MICRO;
    for seed in chaos_seeds() {
        let faults = || {
            vec![(
                1usize,
                FaultPlan::new()
                    .crash_at(60 * us, NodeId(1))
                    .restart_at(400 * us, NodeId(1))
                    .drop_window(80 * us, NodeId(3), 400, 200 * us),
            )]
        };
        let events = || vec![ReshardEvent::split(1, 40 * us, 500).pace_ns(2_000)];
        let sequential = run(seed, ShardMode::Sequential, events(), faults());
        let threaded = run(seed, ShardMode::Threads(2), events(), faults());
        let shared = run(seed, ShardMode::SingleSim, events(), faults());
        assert_runs_identical(
            &sequential,
            &threaded,
            &format!("seed {seed}, crash threads"),
        );
        assert_runs_identical(
            &sequential,
            &shared,
            &format!("seed {seed}, crash single-sim"),
        );
        assert_linearizable(&sequential, &format!("seed {seed}, source crash"));

        // The migration must terminate one way or the other, and the
        // fault must actually bite the shard it targets.
        let stats = sequential.per_shard()[1].reshard.expect("migration ran");
        assert_eq!(
            stats.sealed + stats.aborted,
            1,
            "seed {seed}: the migration must terminate"
        );
        let healthy = run(seed, ShardMode::Sequential, events(), Vec::new());
        assert_ne!(
            healthy.per_shard_traffic()[1],
            sequential.per_shard_traffic()[1],
            "seed {seed}: the fault plan must perturb shard 1"
        );
    }
}

/// The *destination* group dies wholesale mid-copy: the window poisons,
/// the migration aborts, ownership never moves (epoch stays 0), no op is
/// lost — identically in every mode.
#[test]
fn dest_crash_aborts_the_migration_everywhere() {
    let us = NANOS_PER_MICRO;
    for seed in chaos_seeds().into_iter().take(2) {
        let events = || {
            let mut plan = FaultPlan::new();
            for n in 0..4 {
                plan = plan.crash_at(70 * us, NodeId(n));
            }
            vec![ReshardEvent::split(1, 40 * us, 500)
                .pace_ns(2_000)
                .dest_faults(plan)]
        };
        let sequential = run(seed, ShardMode::Sequential, events(), Vec::new());
        let threaded = run(seed, ShardMode::Threads(2), events(), Vec::new());
        let shared = run(seed, ShardMode::SingleSim, events(), Vec::new());
        assert_runs_identical(
            &sequential,
            &threaded,
            &format!("seed {seed}, abort threads"),
        );
        assert_runs_identical(
            &sequential,
            &shared,
            &format!("seed {seed}, abort single-sim"),
        );
        assert_linearizable(&sequential, &format!("seed {seed}, dest crash"));

        let stats = sequential.per_shard()[1].reshard.expect("migration ran");
        assert_eq!(stats.aborted, 1, "seed {seed}: a dead destination aborts");
        assert_eq!(stats.sealed, 0, "seed {seed}: no seal after an abort");
        assert_eq!(
            stats.epoch, 0,
            "seed {seed}: ownership never moves off the source"
        );
        assert_eq!(
            stats.groups, 2,
            "seed {seed}: the doomed destination group was built"
        );
    }
}

/// Membership-driven replica replacement: a node dies permanently, the
/// lease monitor declares it dead, and a scheduled `Rebuild` migrates the
/// group's whole range onto a fresh replica group — sealing, advancing
/// the epoch, and replaying bit-identically in every mode.
#[test]
fn rebuild_replaces_a_dead_group_mid_run() {
    let ms = NANOS_PER_MILLI;
    for seed in chaos_seeds().into_iter().take(2) {
        let faults = || vec![(0usize, FaultPlan::new().crash_at(ms, NodeId(1)))];
        let events = || vec![ReshardEvent::rebuild(0, 2 * ms, 0, 1).pace_ns(1_000)];
        let sequential = run(seed, ShardMode::Sequential, events(), faults());
        let threaded = run(seed, ShardMode::Threads(2), events(), faults());
        let shared = run(seed, ShardMode::SingleSim, events(), faults());
        assert_runs_identical(
            &sequential,
            &threaded,
            &format!("seed {seed}, rebuild threads"),
        );
        assert_runs_identical(
            &sequential,
            &shared,
            &format!("seed {seed}, rebuild single-sim"),
        );
        assert_linearizable(&sequential, &format!("seed {seed}, rebuild"));

        let stats = sequential.per_shard()[0].reshard.expect("rebuild ran");
        assert_eq!(stats.sealed, 1, "seed {seed}: the rebuild must seal");
        assert_eq!(stats.epoch, 1, "seed {seed}: the rebuild bumps the epoch");
        assert_eq!(stats.groups, 2, "seed {seed}: a fresh group was built");
        assert!(
            stats.keys_copied > 0,
            "seed {seed}: the rebuild must copy the keyspace"
        );
    }
}
