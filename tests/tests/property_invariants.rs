//! Property-based tests (proptest) on the core data structures and
//! protocol invariants.

use proptest::prelude::*;

use swarm_core::{
    innout_hash, xxh64, History, LockMode, NodeHealth, OpKind, QuorumConfig, Rounds, Stamp, TsLock,
};
use swarm_fabric::{Fabric, FabricConfig, FaultPlan, NodeId};
use swarm_kv::{
    divergent_stamp_pairs, HistoryRecorder, KvStore, KvStoreExt, LfuCache, Protocol, RepairConfig,
    RepairStrategy, StoreBuilder,
};
use swarm_sim::{Histogram, Sim, NANOS_PER_MICRO, NANOS_PER_MILLI};
use swarm_workload::Zipfian;

proptest! {
    /// Stamp packing is a bijection and preserves order.
    #[test]
    fn stamp_pack_roundtrips_and_orders(
        i1 in 0u64..(1 << 39), t1 in 0u8..=255, v1 in any::<bool>(),
        i2 in 0u64..(1 << 39), t2 in 0u8..=255, v2 in any::<bool>(),
    ) {
        let a = Stamp { i: i1, tid: t1, verified: v1 };
        let b = Stamp { i: i2, tid: t2, verified: v2 };
        prop_assert_eq!(Stamp::unpack48(a.pack48()), a);
        prop_assert_eq!(a < b, a.pack48() < b.pack48());
    }

    /// Any single-byte corruption of a buffer changes its hash, so torn
    /// In-n-Out reads cannot validate.
    #[test]
    fn corruption_never_validates(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        pos in any::<prop::sample::Index>(),
        flip in 1u8..=255,
        meta in any::<u64>(),
    ) {
        let h = innout_hash(meta, &data);
        let mut bad = data.clone();
        let p = pos.index(bad.len());
        bad[p] ^= flip;
        prop_assert_ne!(innout_hash(meta, &bad), h);
    }

    /// xxh64 matches itself across chunked recomputation (determinism) and
    /// differs across seeds.
    #[test]
    fn hash_determinism(data in proptest::collection::vec(any::<u8>(), 0..256), seed in any::<u64>()) {
        prop_assert_eq!(xxh64(&data, seed), xxh64(&data, seed));
        if !data.is_empty() {
            prop_assert_ne!(xxh64(&data, seed), xxh64(&data, seed.wrapping_add(1)));
        }
    }

    /// Zipfian samples stay in range for arbitrary uniform inputs.
    #[test]
    fn zipfian_in_range(n in 1u64..50_000, u in 0.0f64..1.0) {
        let z = Zipfian::new(n, 0.99, true);
        prop_assert!(z.sample(u) < n);
    }

    /// The LFU cache never exceeds capacity and `get` after `insert` hits.
    #[test]
    fn lfu_capacity_invariant(
        cap in 1usize..32,
        ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..200),
    ) {
        let rng = swarm_sim::SimRng::shared(&Sim::new(1));
        let mut cache: LfuCache<u32> = LfuCache::new(cap);
        for (key, is_insert) in ops {
            let key = key as u64 % 64;
            if is_insert {
                cache.insert(&rng, key, key as u32);
                prop_assert_eq!(cache.get(key), Some(&(key as u32)));
            } else {
                cache.remove(key);
                prop_assert_eq!(cache.get(key), None);
            }
            prop_assert!(cache.len() <= cap);
        }
    }

    /// Histogram percentiles are monotone in p.
    #[test]
    fn percentiles_are_monotone(samples in proptest::collection::vec(0u64..1_000_000, 1..256)) {
        let mut h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        let mut prev = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// Sequential histories built from a register model are always accepted
    /// by the linearizability checker.
    #[test]
    fn checker_accepts_sequential_histories(ops in proptest::collection::vec((any::<bool>(), 1u64..16), 1..12)) {
        let mut h = History::new();
        let mut value = 0u64;
        let mut t = 0u64;
        for (is_write, v) in ops {
            let invoke = t;
            t += 2;
            if is_write {
                value = v;
                h.push(invoke, t, OpKind::Write(v));
            } else {
                h.push(invoke, t, OpKind::Read(value));
            }
            t += 1;
        }
        prop_assert!(h.is_linearizable());
    }

    /// Batched multi-ops are equivalent to the sequential single-key calls:
    /// for any seed, key subset, and value tag — and with a second client
    /// concurrently hammering a disjoint key range — `multi_update` +
    /// `multi_get` observe exactly the values the equivalent sequential
    /// `update`/`get` calls produce (linearizability preserved under
    /// batching).
    #[test]
    fn batched_ops_match_sequential(seed in 0u64..200, mask in 1u16..=u16::MAX, tag in 0u8..200) {
        // Keys are the set bits of `mask`: 1..=16 distinct keys.
        let keys: Vec<u64> = (0..16).filter(|b| mask & (1 << b) != 0).collect();
        let value = move |k: u64| vec![tag ^ k as u8; 64];

        let run = |batched: bool| -> Vec<Option<Vec<u8>>> {
            let sim = Sim::new(10_000 + seed);
            let cluster = StoreBuilder::new(Protocol::SafeGuess).build_cluster(&sim);
            cluster.load_keys(64, |k| vec![k as u8; 64]);
            // Concurrent background traffic on a disjoint key range.
            let noisy = cluster.client(1);
            let sim2 = sim.clone();
            sim.spawn(async move {
                for i in 0..24u64 {
                    let k = 32 + sim2.rand_range(0, 32);
                    noisy.update(k, vec![i as u8; 64]).await.unwrap();
                }
            });
            let client = cluster.client(0);
            let keys = keys.clone();
            sim.block_on(async move {
                let pairs: Vec<(u64, Vec<u8>)> =
                    keys.iter().map(|&k| (k, value(k))).collect();
                if batched {
                    for r in client.multi_update(&pairs).await {
                        r.unwrap();
                    }
                    client
                        .multi_get(&keys)
                        .await
                        .into_iter()
                        .map(|r| r.unwrap().map(|v| (*v).clone()))
                        .collect()
                } else {
                    for (k, v) in pairs {
                        client.update(k, v).await.unwrap();
                    }
                    let mut out = Vec::with_capacity(keys.len());
                    for &k in &keys {
                        out.push(client.get(k).await.unwrap().map(|v| (*v).clone()));
                    }
                    out
                }
            })
        };

        let batched = run(true);
        let sequential = run(false);
        prop_assert_eq!(&batched, &sequential);
        for (i, got) in batched.iter().enumerate() {
            prop_assert_eq!(got.as_deref(), Some(&value(keys[i])[..]));
        }
    }

    /// Timestamp-lock true exclusion under randomized schedules: for any
    /// seed and timestamp, READ and WRITE mode never both acquire.
    #[test]
    fn tslock_exclusion(seed in 0u64..5_000, ts_i in 1u64..1_000) {
        let sim = Sim::new(seed);
        let fabric = Fabric::new(&sim, FabricConfig::default(), 3);
        let words: Vec<(NodeId, u64)> = fabric
            .node_ids()
            .into_iter()
            .map(|id| (id, fabric.node(id).alloc(8, 8)))
            .collect();
        let mk = || {
            TsLock::new(
                &sim,
                std::rc::Rc::new(fabric.endpoint()),
                words.clone(),
                NodeHealth::new(3),
                QuorumConfig::default(),
                Rounds::new(),
            )
        };
        let (l1, l2) = (mk(), mk());
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for (l, mode) in [(l1, LockMode::Read), (l2, LockMode::Write)] {
            let sim2 = sim.clone();
            let results = std::rc::Rc::clone(&results);
            sim.spawn(async move {
                sim2.sleep_ns(sim2.rand_range(0, 2_000)).await;
                let ok = l.try_lock((ts_i, 0), mode).await;
                results.borrow_mut().push(ok);
            });
        }
        sim.run();
        let wins = results.borrow().iter().filter(|&&b| b).count();
        prop_assert!(wins <= 1, "both lock modes succeeded");
    }
}

proptest! {
    /// The repair delta stream is a CAS-MAX merge, so it *commutes* with
    /// concurrent foreground writes (per-key linearizability holds with the
    /// agent armed during a fault window, for any seed, drop rate, and
    /// digest strategy) and is *idempotent* (replaying the whole protocol
    /// over converged replicas applies zero further deltas).
    #[test]
    fn repair_deltas_commute_with_writes_and_are_idempotent(
        seed in 0u64..500,
        permille in 100u16..600,
        strategy_idx in 0usize..3,
    ) {
        const KEYS: u64 = 32;
        const VALUE_SIZE: usize = 64;
        let tagged = |tag: u64| {
            let mut v = vec![0u8; VALUE_SIZE];
            v[..8].copy_from_slice(&tag.to_le_bytes());
            v
        };
        let strategy = RepairStrategy::all()[strategy_idx];
        let sim = Sim::new(30_000 + seed);
        let cluster = StoreBuilder::new(Protocol::SafeGuess)
            .value_size(VALUE_SIZE)
            .max_clients(3)
            .op_deadline_ns(2 * NANOS_PER_MILLI)
            .repair(RepairConfig::with_strategy(strategy))
            .build_cluster(&sim);
        cluster.load_keys(KEYS, |k| tagged((1 << 32) + k));
        let rec = HistoryRecorder::new(&sim);
        for k in 0..KEYS {
            rec.set_initial(k, &tagged((1 << 32) + k));
        }
        cluster.fabric().apply_fault_plan(&FaultPlan::new().drop_window(
            10 * NANOS_PER_MICRO,
            NodeId(0),
            permille,
            300 * NANOS_PER_MICRO,
        ));

        // The agent replays delta rounds *while* the writers run — the
        // commutativity half of the property.
        let agent = cluster.repair().expect("repair configured").clone();
        agent.arm_until(NANOS_PER_MILLI);
        let tag = std::rc::Rc::new(std::cell::Cell::new(0u64));
        for cid in 0..2 {
            let store = rec.wrap(cluster.client(cid));
            let sim2 = sim.clone();
            let tag = std::rc::Rc::clone(&tag);
            sim.spawn(async move {
                for _ in 0..20u32 {
                    sim2.sleep_ns(sim2.rand_range(1, 30 * NANOS_PER_MICRO)).await;
                    let key = sim2.rand_range(0, KEYS);
                    if sim2.rand_range(0, 2) == 0 {
                        let _ = store.get(key).await;
                    } else {
                        let t = tag.get() + 1;
                        tag.set(t);
                        let _ = store.update(key, tagged(t)).await;
                    }
                }
            });
        }
        sim.run();
        let checked = rec.take_history().check();
        prop_assert!(
            checked.is_ok(),
            "history with interleaved repair does not linearize: {:?}",
            checked.err()
        );

        let c = cluster.swarm().expect("SWARM-KV").clone();
        let a2 = agent.clone();
        let (_, converged) = sim.block_on(async move { a2.converge().await });
        prop_assert!(converged, "repair must converge within its round budget");
        prop_assert_eq!(divergent_stamp_pairs(&c), 0);

        // Idempotence: a second full protocol replay moves nothing.
        let deltas_before = agent.stats().deltas_applied;
        let a3 = agent.clone();
        let (_, converged2) = sim.block_on(async move { a3.converge().await });
        prop_assert!(converged2);
        prop_assert_eq!(agent.stats().deltas_applied, deltas_before);
        prop_assert_eq!(divergent_stamp_pairs(&c), 0);
    }
}
