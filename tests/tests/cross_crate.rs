//! Cross-crate integration tests: the full SWARM-KV stack (workload
//! generator -> KV client -> Safe-Guess -> In-n-Out -> fabric) exercised
//! end to end through the `StoreBuilder` front door, including the paper's
//! headline comparative claims.

use std::cell::RefCell;
use std::rc::Rc;

use swarm_core::{History, OpKind};
use swarm_fabric::NodeId;
use swarm_kv::{run_workload, KvStore, Protocol, RunConfig, StoreBuilder, StoreCluster};
use swarm_sim::{Sim, NANOS_PER_MILLI};
use swarm_workload::{OpType, Workload, WorkloadSpec};

/// A cluster whose loaded values encode the key in the first 8 bytes.
fn cluster(sim: &Sim, proto: Protocol, n_keys: u64) -> StoreCluster {
    let c = StoreBuilder::new(proto).build_cluster(sim);
    c.load_keys(n_keys, |k| {
        let mut v = vec![0u8; 64];
        v[..8].copy_from_slice(&k.to_le_bytes());
        v
    });
    c
}

#[test]
fn same_seed_reproduces_identical_results() {
    let run = || {
        let sim = Sim::new(77);
        let c = cluster(&sim, Protocol::SafeGuess, 256);
        let clients = c.clients(4);
        let stats = run_workload(
            &sim,
            &clients,
            &Workload::ycsb(WorkloadSpec::A, 256, 64),
            &RunConfig {
                warmup_ops: 200,
                measure_ops: 2_000,
                ..Default::default()
            },
        );
        (
            stats.measured_ops,
            stats.lat(OpType::Get).mean(),
            stats.lat(OpType::Update).mean(),
            stats.end_ns,
        )
    };
    assert_eq!(run(), run(), "simulation is not deterministic");
}

#[test]
fn headline_claims_hold_under_ycsb_a() {
    // §7.1's ordering claims on workload A (contended mix). The builder
    // pins DM-ABD's out-of-place single-metadata-word configuration.
    let median = |proto: Protocol| {
        let sim = Sim::new(3);
        let c = cluster(&sim, proto, 2_000);
        let clients = c.clients(4);
        let stats = run_workload(
            &sim,
            &clients,
            &Workload::ycsb(WorkloadSpec::A, 2_000, 64),
            &RunConfig {
                warmup_ops: 4_000,
                measure_ops: 12_000,
                ..Default::default()
            },
        );
        (
            stats.lat(OpType::Get).median(),
            stats.lat(OpType::Update).median(),
        )
    };
    let (sg_get, sg_upd) = median(Protocol::SafeGuess);
    let (abd_get, abd_upd) = median(Protocol::Abd);
    assert!(
        sg_get < abd_get && sg_upd < abd_upd,
        "SWARM-KV must beat DM-ABD: get {sg_get} vs {abd_get}, update {sg_upd} vs {abd_upd}"
    );
}

#[test]
fn kv_store_is_linearizable_under_concurrency_and_crash() {
    // Record a per-key history through the full stack and check it against
    // the atomic-register spec, while a memory node dies mid-run.
    for seed in 0..8 {
        let sim = Sim::new(9_000 + seed);
        let c = cluster(&sim, Protocol::SafeGuess, 4);
        let history = Rc::new(RefCell::new(History::new()));
        let counter = Rc::new(std::cell::Cell::new(0u64));
        for cid in 0..3usize {
            let client = c.client(cid);
            let sim2 = sim.clone();
            let history = Rc::clone(&history);
            let counter = Rc::clone(&counter);
            sim.spawn(async move {
                for _ in 0..6 {
                    sim2.sleep_ns(sim2.rand_range(1, 5_000)).await;
                    let invoke = sim2.now();
                    if sim2.rand_range(0, 100) < 50 {
                        // Offset write values so they never collide with the
                        // key id the loader encoded in the initial value.
                        let v = counter.get() + 1_000;
                        counter.set(counter.get() + 1);
                        let mut bytes = vec![0u8; 64];
                        bytes[..8].copy_from_slice(&v.to_le_bytes());
                        client.update(2, bytes).await.unwrap();
                        history
                            .borrow_mut()
                            .push(invoke, sim2.now(), OpKind::Write(v));
                    } else {
                        let got = client.get(2).await.unwrap().expect("key 2 never deleted");
                        let v = u64::from_le_bytes(got[..8].try_into().unwrap());
                        // The loaded value encodes the key (2); map it to the
                        // checker's initial value 0.
                        let v = if v == 2 { 0 } else { v };
                        history
                            .borrow_mut()
                            .push(invoke, sim2.now(), OpKind::Read(v));
                    }
                }
            });
        }
        let c2 = c.clone();
        sim.schedule_after(20_000, move |_| c2.crash_node(NodeId(1)));
        sim.run();
        let h = Rc::try_unwrap(history).unwrap().into_inner();
        assert_eq!(h.len(), 18, "seed {seed}: ops lost");
        assert!(h.is_linearizable(), "seed {seed}: non-linearizable");
    }
}

#[test]
fn availability_through_crash_no_failed_ops() {
    let sim = Sim::new(5);
    let c = cluster(&sim, Protocol::SafeGuess, 1_000);
    c.membership().unwrap().watch_until(20 * NANOS_PER_MILLI);
    let clients = c.clients(4);
    let c2 = c.clone();
    sim.schedule_after(2 * NANOS_PER_MILLI, move |_| c2.crash_node(NodeId(0)));
    let stats = run_workload(
        &sim,
        &clients,
        &Workload::ycsb(WorkloadSpec::A, 1_000, 64),
        &RunConfig {
            warmup_ops: 0,
            measure_ops: 20_000,
            concurrency: 2,
            ..Default::default()
        },
    );
    assert_eq!(stats.measured_ops, 20_000);
    assert_eq!(stats.failed_ops, 0, "SWARM-KV lost availability");
    // Tail latency shows the brief quorum-widening spikes, but the median
    // stays microsecond-scale.
    let mut g = stats.lat(OpType::Get);
    assert!(g.median() < 6_000, "median {}", g.median());
}

#[test]
fn value_sizes_roundtrip_through_the_whole_stack() {
    for &vs in &[16usize, 256, 4096] {
        let sim = Sim::new(6);
        let c = StoreBuilder::new(Protocol::SafeGuess)
            .value_size(vs)
            .build_cluster(&sim);
        c.load_keys(8, |_| vec![0u8; vs]);
        let a = c.client(0);
        let b = c.client(1);
        sim.block_on(async move {
            let payload: Vec<u8> = (0..vs).map(|i| (i * 31 % 251) as u8).collect();
            a.update(5, payload.clone()).await.unwrap();
            assert_eq!(*b.get(5).await.unwrap().unwrap(), payload, "size {vs}");
        });
    }
}

#[test]
fn deletes_are_visible_across_clients_with_stale_caches() {
    let sim = Sim::new(7);
    let c = cluster(&sim, Protocol::SafeGuess, 8);
    let a = c.client(0);
    let b = c.client(1);
    sim.block_on(async move {
        // B caches the location first.
        assert!(b.get(1).await.unwrap().is_some());
        // A deletes; B's cached replicas hold the tombstone.
        a.delete(1).await.unwrap();
        assert_eq!(b.get(1).await, Ok(None), "stale cache must see tombstone");
        assert!(b.update(1, vec![9u8; 64]).await.is_err());
    });
}

#[test]
fn steady_state_kv_traffic_schedules_no_boxed_closures() {
    // Location-cache misses pay index roundtrips (which legitimately use
    // boxed scheduled actions), but cached steady-state gets/updates must
    // ride the executor's closure-free timer path end to end — this is the
    // allocation profile the hot-path figures run in.
    let sim = Sim::new(11);
    let c = cluster(&sim, Protocol::SafeGuess, 64);
    let a = c.client(0);
    let sim2 = sim.clone();
    sim.block_on(async move {
        // Warm the location cache (index misses box closures; that's fine).
        for k in 0..64 {
            assert!(a.get(k).await.unwrap().is_some());
        }
        let boxed_before = sim2.counters().boxed_events;
        let timers_before = sim2.counters().timer_events;
        for i in 0..256u64 {
            let k = i % 64;
            a.update(k, vec![i as u8; 64]).await.unwrap();
            assert!(a.get(k).await.unwrap().is_some());
        }
        let after = sim2.counters();
        assert_eq!(
            after.boxed_events, boxed_before,
            "cached steady-state KV ops must not schedule boxed closures"
        );
        assert!(after.timer_events > timers_before, "ops must use timers");
    });
}

#[test]
fn seed_sweep_reruns_are_bit_identical() {
    // ≥4 seeds, each executed twice: traffic counters, measured latency
    // bits, final virtual time, and the executor's event/poll counters (a
    // proxy for the exact event firing order) must all reproduce exactly.
    let run = |seed: u64| {
        let sim = Sim::new(seed);
        let c = cluster(&sim, Protocol::SafeGuess, 128);
        let clients = c.clients(2);
        let stats = run_workload(
            &sim,
            &clients,
            &Workload::ycsb(WorkloadSpec::B, 128, 64),
            &RunConfig {
                warmup_ops: 50,
                measure_ops: 600,
                ..Default::default()
            },
        );
        (
            stats.measured_ops,
            stats.end_ns,
            stats.lat(OpType::Get).mean().to_bits(),
            stats.lat(OpType::Update).mean().to_bits(),
            c.fabric().stats(),
            sim.counters(),
        )
    };
    for seed in [42u64, 43, 44, 45, 46] {
        assert_eq!(run(seed), run(seed), "seed {seed} diverged across reruns");
    }
}
